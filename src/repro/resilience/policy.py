"""Retry and fallback policies: who gets a second chance, and on what.

Failure taxonomy (see ``docs/robustness.md``)
---------------------------------------------

Every failed verification attempt falls into one of four classes, and the
class — not the caller — decides what recovery is sound:

``crash``
    The worker process died without delivering a result (segfault, OOM
    kill, an operator ``kill -9``).  The *environment* failed, not the
    problem: retryable on a fresh worker.
``hard_timeout``
    The parent killed a wedged worker at the hard per-job wall-clock
    limit (or the straggler grace).  Often load-induced, so retryable —
    bounded by the attempt cap so a genuinely hard job still terminates.
``budget``
    An in-process budget (monomials, seconds, conflicts, nodes) tripped
    deterministically.  Retrying the same attempt reproduces the same
    trip, so this class is *not* retryable — it degrades through the
    :class:`FallbackPolicy` chain instead (escalated budgets, then a
    cheaper-to-trust backend).
``error``
    A Python exception inside the job (generator bug, malformed input).
    Deterministic, never retried, never degraded: surfacing it is the fix.

Verdicts (``verified``/``refuted``/``not_applicable``) are outcomes, not
failures; in particular a refutation is never "retried away".

Both policies are pure data + pure functions: backoff jitter is seeded and
keyed (same policy, same job, same attempt → same delay, byte-for-byte
reproducible chaos tests), and the fallback chain is derived from the
backend registry (:attr:`repro.api.registry.BackendSpec.degrades_to`), so
a plugged-in backend declares its own degradation path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import VerificationError

#: Failure classes a failed attempt can be assigned to (``none`` = the
#: attempt produced a verdict, not a failure).
FAILURE_CLASSES = ("crash", "hard_timeout", "budget", "error", "none")

#: Markers in a ``TO`` row's reason that identify a *hard* (parent-kill)
#: timeout as opposed to a deterministic in-process budget trip.
_HARD_TIMEOUT_MARKERS = ("hard task timeout", "straggler")


def classify_row(row) -> str:
    """Failure class of an experiment-runner table row (see module doc)."""
    status = row.get("status")
    if status == "crash":
        return "crash"
    if status == "error":
        return "error"
    if status == "TO":
        reason = row.get("reason") or ""
        if any(marker in reason for marker in _HARD_TIMEOUT_MARKERS):
            return "hard_timeout"
        return "budget"
    return "none"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the initial attempt, so ``max_attempts=3``
    means at most two retries.  ``delay_s(attempt, key)`` is the pause
    before attempt ``attempt + 1``: ``base_delay_s * multiplier**(attempt
    - 1)``, capped at ``max_delay_s``, stretched by up to ``jitter``
    (fractional) derived from ``sha256(seed, key, attempt)`` — the same
    policy applied to the same job always waits the same time, so chaos
    runs are reproducible while distinct jobs still decorrelate.

    Only :data:`FAILURE_CLASSES` entries in ``retryable`` are retried;
    the default is exactly the environment failures (``crash``,
    ``hard_timeout``) — deterministic failures re-fail identically and
    belong to the :class:`FallbackPolicy` instead.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    #: Maximal fractional jitter stretch (0.1 = up to +10%).
    jitter: float = 0.1
    seed: int = 0
    retryable: tuple[str, ...] = ("crash", "hard_timeout")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise VerificationError("RetryPolicy needs max_attempts >= 1")
        unknown = set(self.retryable) - set(FAILURE_CLASSES)
        if unknown:
            raise VerificationError(
                f"unknown retryable failure classes {sorted(unknown)}; "
                f"expected a subset of {FAILURE_CLASSES}")

    def is_retryable(self, failure: str) -> bool:
        """True iff ``failure`` warrants another attempt under this policy."""
        return failure in self.retryable

    def delay_s(self, attempt: int, key: object = None) -> float:
        """Backoff before the attempt after ``attempt`` (1-based) failed."""
        base = min(self.base_delay_s * self.multiplier ** max(attempt - 1, 0),
                   self.max_delay_s)
        digest = hashlib.sha256(
            repr((self.seed, key, attempt)).encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 + self.jitter * fraction)


#: Budgets fields an ``escalate`` fallback step multiplies (``None``
#: values — disabled guards — stay disabled).
_ESCALATED_BUDGET_FIELDS = ("monomial_budget", "time_budget_s",
                            "sat_conflict_budget", "bdd_node_budget")


def escalate_budgets(budgets, scale: float):
    """A :class:`~repro.api.request.Budgets` copy with the guards scaled up."""
    changes = {}
    for name in _ESCALATED_BUDGET_FIELDS:
        value = getattr(budgets, name)
        if value is not None:
            scaled = value * scale
            changes[name] = type(value)(scaled)
    return budgets.replace(**changes)


@dataclass(frozen=True)
class FallbackStep:
    """One rung of a degradation chain.

    ``kind="escalate"`` re-runs the same backend with every budget
    multiplied by ``budget_scale``; ``kind="backend"`` hands the problem
    to ``method`` (e.g. the ``sat-cec`` golden-reference baseline) under
    the original budgets.
    """

    kind: str
    method: str | None = None
    budget_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in ("escalate", "backend"):
            raise VerificationError(
                f"unknown fallback step kind {self.kind!r}; "
                "expected 'escalate' or 'backend'")
        if self.kind == "backend" and not self.method:
            raise VerificationError("backend fallback steps need a method")
        if self.kind == "escalate" and self.budget_scale <= 1.0:
            raise VerificationError("escalation needs budget_scale > 1")


@dataclass(frozen=True)
class FallbackPolicy:
    """Registry-driven graceful degradation on deterministic budget trips.

    The default chain of a backend is derived from its
    :class:`~repro.api.registry.BackendSpec`: algebraic backends first
    retry once with every budget multiplied by ``escalation``, then walk
    the backends named in ``spec.degrades_to`` (``sat-cec`` for the
    built-in membership tests — Beame & Liew's direction: when algebraic
    reasoning trips its budget, SAT reasoning takes over).  ``chains``
    overrides the derivation per method; the ``"*"`` key overrides it for
    every method (what the CLI ``--fallback`` spec builds).
    """

    escalation: float = 4.0
    chains: dict[str, tuple[FallbackStep, ...]] | None = field(default=None)

    def chain_for(self, method: str) -> tuple[FallbackStep, ...]:
        """The degradation chain applied after ``method`` trips a budget."""
        if self.chains is not None:
            if method in self.chains:
                return tuple(self.chains[method])
            if "*" in self.chains:
                return tuple(self.chains["*"])
        from repro.api.registry import get_backend
        spec = get_backend(method)
        steps: list[FallbackStep] = []
        if spec.kind == "algebraic":
            steps.append(FallbackStep("escalate", budget_scale=self.escalation))
        steps.extend(FallbackStep("backend", method=name)
                     for name in spec.degrades_to if name != method)
        return tuple(steps)

    @classmethod
    def parse(cls, spec: str) -> "FallbackPolicy | None":
        """Build a policy from a CLI ``--fallback`` spec.

        ``"none"`` disables fallback (returns ``None``), ``"default"``
        derives chains from the registry, and a comma-separated list like
        ``"escalate:8,sat-cec"`` applies one explicit chain to every
        method — ``escalate[:SCALE]`` rungs re-run with scaled budgets,
        any other token must be a registered backend name.
        """
        text = spec.strip().lower()
        if text == "none":
            return None
        if text == "default":
            return cls()
        from repro.api.registry import get_backend
        steps = []
        for token in (part.strip() for part in text.split(",")):
            if not token:
                continue
            if token.startswith("escalate"):
                _, _, scale = token.partition(":")
                steps.append(FallbackStep(
                    "escalate", budget_scale=float(scale) if scale else 4.0))
            else:
                get_backend(token)      # unknown backends fail fast
                steps.append(FallbackStep("backend", method=token))
        if not steps:
            raise VerificationError(
                f"empty fallback spec {spec!r}; expected 'none', 'default', "
                "or a comma-separated chain like 'escalate:8,sat-cec'")
        return cls(chains={"*": tuple(steps)})


def attempt_entry(attempt: int, method: str, kind: str, outcome: str,
                  reason: str | None = None, **extra) -> dict:
    """One ``attempts``-history record (report schema 4, fixed key order).

    ``kind`` says why this attempt ran (``initial``, ``retry``,
    ``escalate``, ``fallback``); ``outcome`` is either the final report
    verdict or, for failed attempts, the :data:`FAILURE_CLASSES` entry
    that triggered the next rung.  ``extra`` carries rung parameters
    (``next_delay_s``, ``budget_scale``) — keep them deterministic, the
    history rides through the result cache byte-for-byte.
    """
    entry = {"attempt": attempt, "method": method, "kind": kind,
             "outcome": outcome, "reason": reason}
    entry.update(extra)
    return entry
