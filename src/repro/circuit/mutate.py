"""Bug injection for negative testing.

The membership-testing algorithm must not only prove correct multipliers but
also *detect* faulty ones (non-zero remainder).  This module produces
single-gate mutations — the classic gate-substitution fault model — that are
used by the negative tests and by ``examples/buggy_multiplier.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError

#: Gate types a mutation may map between (same arity, different function).
_SWAPPABLE: dict[GateType, tuple[GateType, ...]] = {
    GateType.AND: (GateType.OR, GateType.XOR, GateType.NAND),
    GateType.OR: (GateType.AND, GateType.XOR, GateType.NOR),
    GateType.XOR: (GateType.AND, GateType.OR, GateType.XNOR),
    GateType.NAND: (GateType.AND, GateType.NOR),
    GateType.NOR: (GateType.OR, GateType.NAND),
    GateType.XNOR: (GateType.XOR,),
    GateType.NOT: (GateType.BUF,),
    GateType.BUF: (GateType.NOT,),
}


@dataclass(frozen=True)
class Mutation:
    """Description of a single-gate fault."""

    signal: str
    original: GateType
    mutated: GateType

    def describe(self) -> str:
        """Human-readable description."""
        return (f"gate driving {self.signal!r} changed from "
                f"{self.original.value} to {self.mutated.value}")

    @property
    def key(self) -> str:
        """Stable machine-readable identity (campaign row ids, resume files)."""
        return f"{self.signal}:{self.original.value}->{self.mutated.value}"


def list_mutations(netlist: Netlist) -> list[Mutation]:
    """All single-gate gate-type substitutions applicable to the netlist."""
    mutations: list[Mutation] = []
    for gate in netlist.gates():
        for target in _SWAPPABLE.get(gate.gate_type, ()):
            mutations.append(Mutation(gate.output, gate.gate_type, target))
    return mutations


def apply_mutation(netlist: Netlist, mutation: Mutation) -> Netlist:
    """Return a copy of the netlist with ``mutation`` applied."""
    mutated = netlist.copy(f"{netlist.name}_buggy")
    gate = mutated.gate_of(mutation.signal)
    if gate.gate_type is not mutation.original:
        raise CircuitError(
            f"mutation expects {mutation.original.value} at {mutation.signal!r}, "
            f"found {gate.gate_type.value}")
    mutated.replace_gate(mutation.signal,
                         Gate(output=gate.output, gate_type=mutation.mutated,
                              inputs=gate.inputs, name=gate.name))
    return mutated


def inject_bug(netlist: Netlist, seed: int = 0) -> tuple[Netlist, Mutation]:
    """Apply one pseudo-random gate-substitution fault.

    Returns the mutated netlist and the mutation description.  The choice is
    deterministic for a given seed so tests are reproducible.
    """
    mutations = list_mutations(netlist)
    if not mutations:
        raise CircuitError("netlist has no mutable gates")
    rng = random.Random(seed)
    mutation = rng.choice(mutations)
    return apply_mutation(netlist, mutation), mutation
