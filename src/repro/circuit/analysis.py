"""Structural netlist analysis: topological order, levels, fanout, cones.

These analyses feed both the variable order of the algebraic model (reverse
topological levels) and the rewriting schemes (fanout counts for MT-FO,
XOR-gate connectivity for MT-LR).
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError


def topological_signals(netlist: Netlist) -> list[str]:
    """All signals in topological order (inputs first, outputs last).

    Kahn's algorithm over the gate graph; raises
    :class:`~repro.errors.CircuitError` on combinational loops.
    """
    indegree: dict[str, int] = {}
    consumers: dict[str, list[str]] = {}
    for gate in netlist.gates():
        indegree[gate.output] = len(gate.inputs)
        for signal in gate.inputs:
            bucket = consumers.get(signal)
            if bucket is None:
                consumers[signal] = [gate.output]
            else:
                bucket.append(gate.output)

    # The ready FIFO *is* the topological order: consumers are appended as
    # they become ready and a moving head replaces the deque.
    order: list[str] = list(netlist.inputs)
    order.extend(out for out, deg in indegree.items() if deg == 0)
    seen = set(order)
    consumers_get = consumers.get
    head = 0
    while head < len(order):
        signal = order[head]
        head += 1
        for consumer in consumers_get(signal, ()):  # gates reading this signal
            remaining = indegree[consumer] - 1
            indegree[consumer] = remaining
            if remaining == 0 and consumer not in seen:
                seen.add(consumer)
                order.append(consumer)
    expected = len(netlist.inputs) + netlist.num_gates
    if len(order) != expected:
        raise CircuitError("netlist contains a combinational loop")
    return order


def topological_levels(netlist: Netlist) -> tuple[list[str], dict[str, int]]:
    """Topological order and longest-path levels in one traversal.

    Equivalent to :func:`topological_signals` followed by
    :func:`signal_levels` — a gate's level is finalised the moment it
    becomes ready, so both results fall out of the same Kahn pass.  Model
    extraction calls this once per verification, which makes the saved
    second traversal measurable.
    """
    indegree: dict[str, int] = {}
    consumers: dict[str, list[str]] = {}
    gates: dict[str, tuple[str, ...]] = {}
    for gate in netlist.gates():
        indegree[gate.output] = len(gate.inputs)
        gates[gate.output] = gate.inputs
        for signal in gate.inputs:
            bucket = consumers.get(signal)
            if bucket is None:
                consumers[signal] = [gate.output]
            else:
                bucket.append(gate.output)

    order: list[str] = list(netlist.inputs)
    levels: dict[str, int] = {name: 0 for name in order}
    for out, deg in indegree.items():
        if deg == 0:
            order.append(out)
            levels[out] = 0
    seen = set(order)
    consumers_get = consumers.get
    head = 0
    while head < len(order):
        signal = order[head]
        head += 1
        for consumer in consumers_get(signal, ()):
            remaining = indegree[consumer] - 1
            indegree[consumer] = remaining
            if remaining == 0 and consumer not in seen:
                seen.add(consumer)
                order.append(consumer)
                inputs = gates[consumer]
                if len(inputs) == 2:
                    first = levels[inputs[0]]
                    second = levels[inputs[1]]
                    levels[consumer] = 1 + (first if first >= second
                                            else second)
                else:
                    levels[consumer] = 1 + max(levels[s] for s in inputs)
    expected = len(netlist.inputs) + netlist.num_gates
    if len(order) != expected:
        raise CircuitError("netlist contains a combinational loop")
    return order, levels


def signal_levels(netlist: Netlist,
                  order: list[str] | None = None) -> dict[str, int]:
    """Longest-path level of every signal (primary inputs have level 0).

    The level induces the paper's reverse topological variable order: gate
    outputs always have a strictly larger level than their inputs.  Pass a
    precomputed ``topological_signals`` order to avoid a second traversal.
    """
    levels: dict[str, int] = {name: 0 for name in netlist.inputs}
    if order is None:
        order = topological_signals(netlist)
    gate_of = netlist.gate_of
    for signal in order:
        if signal in levels:
            continue
        inputs = gate_of(signal).inputs
        if not inputs:
            levels[signal] = 0
        elif len(inputs) == 2:
            # The two-input case dominates synthesized netlists; dodging the
            # generator machinery of ``max`` measurably speeds model builds.
            first = levels[inputs[0]]
            second = levels[inputs[1]]
            levels[signal] = 1 + (first if first >= second else second)
        else:
            levels[signal] = 1 + max(levels[s] for s in inputs)
    return levels


def fanout_counts(netlist: Netlist) -> dict[str, int]:
    """Number of gate inputs each signal drives (primary outputs add one)."""
    counts: dict[str, int] = {name: 0 for name in netlist.signals()}
    for gate in netlist.gates():
        for signal in gate.inputs:
            counts[signal] = counts.get(signal, 0) + 1
    for output in netlist.outputs:
        counts[output] = counts.get(output, 0) + 1
    return counts


def multi_fanout_signals(netlist: Netlist) -> set[str]:
    """Signals read by more than one gate (the fanout variables of MT-FO)."""
    return {signal for signal, count in fanout_counts(netlist).items() if count > 1}


def transitive_fanin(netlist: Netlist, signals: Iterable[str]) -> set[str]:
    """All signals in the input cone of ``signals`` (including themselves)."""
    cone: set[str] = set()
    stack = list(signals)
    while stack:
        signal = stack.pop()
        if signal in cone:
            continue
        cone.add(signal)
        if not netlist.is_input(signal) and netlist.has_signal(signal):
            stack.extend(netlist.gate_of(signal).inputs)
    return cone


def output_cones(netlist: Netlist) -> dict[str, set[str]]:
    """Transitive-fanin cone of every primary output, keyed by output name.

    The per-output view of :func:`transitive_fanin` used by the incremental
    verifier's cone partitioner (:mod:`repro.incremental`): each set contains
    the output itself, every gate output feeding it, and the primary inputs
    it depends on.  Cones of different outputs overlap wherever logic is
    shared (carry chains, partial-product columns).
    """
    return {output: transitive_fanin(netlist, [output])
            for output in netlist.outputs}


def input_support(netlist: Netlist, signal: str) -> set[str]:
    """Primary inputs in the cone of ``signal``."""
    return {s for s in transitive_fanin(netlist, [signal]) if netlist.is_input(s)}


def circuit_depth(netlist: Netlist) -> int:
    """Longest combinational path length in gates."""
    levels = signal_levels(netlist)
    return max(levels.values(), default=0)
