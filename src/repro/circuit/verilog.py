"""Minimal structural-Verilog writer and reader.

The paper's flow generates multipliers as Verilog RTL (Arithmetic Module
Generator) and synthesises them to gate-level netlists with Yosys.  This
module provides the equivalent interchange format for the reproduction: the
generators can export gate-level Verilog, and externally produced gate-level
netlists (Verilog primitives only) can be imported and verified.

Supported subset for reading:

* ``module``/``endmodule`` with a port list,
* ``input``, ``output``, ``wire`` declarations, scalar or vector
  (``input [7:0] a;`` expands to ``a7 .. a0``),
* gate primitive instantiations ``and/or/xor/nand/nor/xnor/not/buf
  name (out, in, ...);``,
* ``assign out = 1'b0 / 1'b1 / signal / ~signal / a op b;`` with a single
  operator (``&``, ``|``, ``^``).
"""

from __future__ import annotations

import re

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "xor": GateType.XOR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_REVERSE_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.XOR: "xor",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}


def _sanitize(name: str) -> str:
    """Make a signal name a valid Verilog identifier."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def write_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render the netlist as gate-level structural Verilog."""
    module = _sanitize(module_name or netlist.name)
    inputs = [_sanitize(s) for s in netlist.inputs]
    outputs = [_sanitize(s) for s in netlist.outputs]
    rename = {s: _sanitize(s) for s in netlist.signals()}

    wires = [rename[g.output] for g in netlist.gates()
             if g.output not in netlist.outputs]
    lines = [f"module {module} ({', '.join(inputs + outputs)});"]
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        lines.append(f"  output {name};")
    for name in wires:
        lines.append(f"  wire {name};")
    lines.append("")
    for i, gate in enumerate(netlist.gates()):
        out = rename[gate.output]
        ins = [rename[s] for s in gate.inputs]
        if gate.gate_type is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.gate_type is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        else:
            prim = _REVERSE_PRIMITIVES[gate.gate_type]
            lines.append(f"  {prim} g{i} ({', '.join([out] + ins)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(netlist: Netlist, path: str, module_name: str | None = None) -> None:
    """Write gate-level Verilog to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(netlist, module_name))


# -- reading -------------------------------------------------------------------

_DECL_RE = re.compile(
    r"^(input|output|wire)\s*(?:\[\s*(\d+)\s*:\s*(\d+)\s*\])?\s*(.+)$")
_GATE_RE = re.compile(r"^(\w+)\s+(?:\w+\s+)?\(([^)]*)\)$")
_ASSIGN_RE = re.compile(r"^assign\s+(\S+)\s*=\s*(.+)$")


def _expand_decl(kind_match: re.Match) -> tuple[str, list[str]]:
    kind, msb, lsb, rest = kind_match.groups()
    names = [n.strip() for n in rest.split(",") if n.strip()]
    expanded: list[str] = []
    for name in names:
        if msb is None:
            expanded.append(name)
        else:
            hi, lo = int(msb), int(lsb)
            step = 1 if hi >= lo else -1
            for i in range(lo, hi + step, step):
                expanded.append(f"{name}{i}")
    return kind, expanded


def _normalise_signal(token: str) -> str:
    token = token.strip()
    match = re.fullmatch(r"(\w+)\s*\[\s*(\d+)\s*\]", token)
    if match:
        return f"{match.group(1)}{match.group(2)}"
    return token


def parse_verilog(text: str, name: str | None = None) -> Netlist:
    """Parse the supported structural-Verilog subset into a netlist."""
    # Strip comments and split into ';'-terminated statements.
    text = re.sub(r"//.*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    statements = [s.strip() for s in text.replace("\n", " ").split(";") if s.strip()]

    netlist: Netlist | None = None
    declared_outputs: list[str] = []
    for statement in statements:
        if statement.startswith("module"):
            header = re.match(r"module\s+(\w+)", statement)
            if not header:
                raise CircuitError(f"malformed module header: {statement!r}")
            netlist = Netlist(name or header.group(1))
            continue
        if statement.startswith("endmodule"):
            continue
        if netlist is None:
            raise CircuitError("statement before module header")

        decl = _DECL_RE.match(statement)
        if decl:
            kind, names = _expand_decl(decl)
            if kind == "input":
                for signal in names:
                    netlist.add_input(signal)
            elif kind == "output":
                declared_outputs.extend(names)
            continue

        assign = _ASSIGN_RE.match(statement)
        if assign:
            target = _normalise_signal(assign.group(1))
            _parse_assign(netlist, target, assign.group(2).strip())
            continue

        gate = _GATE_RE.match(statement)
        if gate and gate.group(1) in _PRIMITIVES:
            ports = [_normalise_signal(p) for p in gate.group(2).split(",")]
            if len(ports) < 2:
                raise CircuitError(f"primitive with too few ports: {statement!r}")
            netlist.add_gate(_PRIMITIVES[gate.group(1)], ports[1:], ports[0])
            continue

        if gate:  # unknown instantiation
            raise CircuitError(f"unsupported instantiation: {statement!r}")

    if netlist is None:
        raise CircuitError("no module found in Verilog source")
    for signal in declared_outputs:
        netlist.add_output(signal)
    netlist.validate()
    return netlist


def _parse_assign(netlist: Netlist, target: str, expression: str) -> None:
    """Translate a single restricted ``assign`` right-hand side."""
    expression = expression.strip()
    if expression in ("1'b0", "1'h0", "0"):
        netlist.const0(target)
        return
    if expression in ("1'b1", "1'h1", "1"):
        netlist.const1(target)
        return
    if expression.startswith("~"):
        netlist.not_(_normalise_signal(expression[1:]), target)
        return
    for op, gate_type in (("&", GateType.AND), ("|", GateType.OR),
                          ("^", GateType.XOR)):
        if op in expression:
            left, right = expression.split(op, 1)
            netlist.add_gate(gate_type,
                             (_normalise_signal(left), _normalise_signal(right)),
                             target)
            return
    netlist.buf(_normalise_signal(expression), target)


def load_verilog(path: str, name: str | None = None) -> Netlist:
    """Read and parse a gate-level Verilog file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), name)
