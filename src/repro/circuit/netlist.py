"""The :class:`Netlist` container for gate-level circuits.

A netlist is a directed acyclic graph of gates.  Signals are identified by
name; each internal signal is driven by exactly one gate, primary inputs are
driven externally.  Word-level helpers (``add_input_word`` and friends) make
the arithmetic generators concise while keeping everything bit-level.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from repro.circuit.gates import Gate, GateType
from repro.errors import CircuitError


class Netlist:
    """A combinational gate-level circuit."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._input_set: set[str] = set()
        self._fresh_counter = 0

    # -- construction ----------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input signal and return its name."""
        if name in self._input_set or name in self._gates:
            raise CircuitError(f"signal {name!r} is already driven")
        self._inputs.append(name)
        self._input_set.add(name)
        return name

    def add_input_word(self, prefix: str, width: int) -> list[str]:
        """Declare ``width`` primary inputs named ``prefix0 .. prefix{width-1}``."""
        return [self.add_input(f"{prefix}{i}") for i in range(width)]

    def add_output(self, name: str) -> str:
        """Mark an existing signal as primary output."""
        if name in self._outputs:
            raise CircuitError(f"output {name!r} declared twice")
        self._outputs.append(name)
        return name

    def add_output_word(self, signals: Sequence[str]) -> list[str]:
        """Mark a list of signals as primary outputs (LSB first)."""
        return [self.add_output(signal) for signal in signals]

    def add_gate(self, gate_type: GateType, inputs: Sequence[str],
                 output: str | None = None, name: str = "") -> str:
        """Add a gate; auto-generate the output signal name if not given."""
        if output is None:
            output = self.fresh_signal(gate_type.value)
        if output in self._gates or output in self._input_set:
            raise CircuitError(f"signal {output!r} is already driven")
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs),
                    name=name or output)
        self._gates[output] = gate
        return output

    def fresh_signal(self, hint: str = "w") -> str:
        """Return a signal name that is not used yet."""
        while True:
            candidate = f"{hint}_{self._fresh_counter}"
            self._fresh_counter += 1
            if candidate not in self._gates and candidate not in self._input_set:
                return candidate

    # Convenience wrappers used heavily by the generators -----------------------

    def const0(self, output: str | None = None) -> str:
        """Constant-0 driver."""
        return self.add_gate(GateType.CONST0, (), output)

    def const1(self, output: str | None = None) -> str:
        """Constant-1 driver."""
        return self.add_gate(GateType.CONST1, (), output)

    def buf(self, a: str, output: str | None = None) -> str:
        """Buffer ``output = a``."""
        return self.add_gate(GateType.BUF, (a,), output)

    def not_(self, a: str, output: str | None = None) -> str:
        """Inverter ``output = ¬a``."""
        return self.add_gate(GateType.NOT, (a,), output)

    def and_(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input AND."""
        return self.add_gate(GateType.AND, (a, b), output)

    def or_(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input OR."""
        return self.add_gate(GateType.OR, (a, b), output)

    def xor(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input XOR."""
        return self.add_gate(GateType.XOR, (a, b), output)

    def nand(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input NAND."""
        return self.add_gate(GateType.NAND, (a, b), output)

    def nor(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input NOR."""
        return self.add_gate(GateType.NOR, (a, b), output)

    def xnor(self, a: str, b: str, output: str | None = None) -> str:
        """Two-input XNOR."""
        return self.add_gate(GateType.XNOR, (a, b), output)

    def and_tree(self, signals: Sequence[str], output: str | None = None) -> str:
        """Balanced AND of any number of signals (≥ 1)."""
        return self._tree(GateType.AND, signals, output)

    def or_tree(self, signals: Sequence[str], output: str | None = None) -> str:
        """Balanced OR of any number of signals (≥ 1)."""
        return self._tree(GateType.OR, signals, output)

    def xor_tree(self, signals: Sequence[str], output: str | None = None) -> str:
        """Balanced XOR of any number of signals (≥ 1)."""
        return self._tree(GateType.XOR, signals, output)

    def _tree(self, gate_type: GateType, signals: Sequence[str],
              output: str | None) -> str:
        if not signals:
            raise CircuitError("cannot build a gate tree over zero signals")
        level = list(signals)
        while len(level) > 1:
            nxt: list[str] = []
            for i in range(0, len(level) - 1, 2):
                last_pair = len(level) <= 2
                out = output if (last_pair and output is not None) else None
                nxt.append(self.add_gate(gate_type, (level[i], level[i + 1]), out))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if output is not None and level[0] != output:
            return self.buf(level[0], output)
        return level[0]

    # -- queries ---------------------------------------------------------------

    @property
    def inputs(self) -> list[str]:
        """Primary input names (construction order)."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[str]:
        """Primary output names (LSB-first for arithmetic words)."""
        return list(self._outputs)

    @property
    def num_gates(self) -> int:
        """Number of gates."""
        return len(self._gates)

    def is_input(self, signal: str) -> bool:
        """Return ``True`` if ``signal`` is a primary input."""
        return signal in self._input_set

    def is_output(self, signal: str) -> bool:
        """Return ``True`` if ``signal`` is a primary output."""
        return signal in self._outputs

    def has_signal(self, signal: str) -> bool:
        """Return ``True`` if ``signal`` is driven by a gate or is an input."""
        return signal in self._gates or signal in self._input_set

    def gate_of(self, signal: str) -> Gate:
        """The gate driving ``signal`` (raises for primary inputs)."""
        try:
            return self._gates[signal]
        except KeyError:
            raise CircuitError(f"signal {signal!r} is not driven by a gate") from None

    def gates(self) -> Iterator[Gate]:
        """Iterate over all gates (insertion order)."""
        return iter(self._gates.values())

    def signals(self) -> Iterator[str]:
        """Iterate over all signals: inputs first, then gate outputs."""
        yield from self._inputs
        yield from self._gates.keys()

    def gate_type_histogram(self) -> Counter:
        """Count gates per type (useful for reporting circuit sizes)."""
        return Counter(g.gate_type for g in self._gates.values())

    def input_word(self, prefix: str) -> list[str]:
        """All primary inputs named ``prefix<i>`` ordered by index."""
        return _select_word(self._inputs, prefix)

    def output_word(self, prefix: str) -> list[str]:
        """All primary outputs named ``prefix<i>`` ordered by index."""
        return _select_word(self._outputs, prefix)

    # -- validation ------------------------------------------------------------

    def validate(self, check_cycles: bool = True) -> None:
        """Check structural sanity: drivers exist, outputs exist, no cycles.

        ``check_cycles=False`` skips the DFS cycle check; callers that run a
        topological traversal right afterwards (which detects loops anyway)
        use it to avoid walking the gate graph twice.
        """
        for gate in self._gates.values():
            for signal in gate.inputs:
                if not self.has_signal(signal):
                    raise CircuitError(
                        f"gate {gate.name!r} reads undriven signal {signal!r}")
        for output in self._outputs:
            if not self.has_signal(output):
                raise CircuitError(f"primary output {output!r} is undriven")
        if not check_cycles:
            return
        # Cycle check via iterative DFS over gate outputs.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[str, int] = {}
        for start in self._gates:
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(self._gates[start].inputs))]
            colour[start] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt in self._input_set or nxt not in self._gates:
                        continue
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        raise CircuitError(
                            f"combinational loop through signal {nxt!r}")
                    if state == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(self._gates[nxt].inputs)))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()

    # -- transformation --------------------------------------------------------

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy of the netlist."""
        clone = Netlist(name or self.name)
        clone._inputs = list(self._inputs)
        clone._input_set = set(self._input_set)
        clone._outputs = list(self._outputs)
        clone._gates = dict(self._gates)
        clone._fresh_counter = self._fresh_counter
        return clone

    def replace_gate(self, output: str, gate: Gate) -> None:
        """Replace the gate driving ``output`` (used for bug injection)."""
        if output not in self._gates:
            raise CircuitError(f"signal {output!r} is not driven by a gate")
        if gate.output != output:
            raise CircuitError("replacement gate must drive the same signal")
        self._gates[output] = gate

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Netlist({self.name!r}, inputs={len(self._inputs)}, "
                f"outputs={len(self._outputs)}, gates={len(self._gates)})")


def _select_word(names: Iterable[str], prefix: str) -> list[str]:
    """Select ``prefix<i>`` signals and order them by the integer suffix."""
    selected: list[tuple[int, str]] = []
    for name in names:
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            selected.append((int(name[len(prefix):]), name))
    return [name for _, name in sorted(selected)]
