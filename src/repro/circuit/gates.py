"""Gate primitives of the netlist substrate.

The generators emit mostly two-input gates (matching a synthesised netlist,
which is what the paper verifies), but the data model supports arbitrary
arity for AND/OR/XOR-like functions so externally read netlists can be
handled as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import reduce
from typing import Sequence

from repro.errors import CircuitError


class GateType(str, Enum):
    """Supported combinational gate functions."""

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"

    @property
    def min_arity(self) -> int:
        """Smallest number of inputs allowed for this gate type."""
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return 2

    @property
    def max_arity(self) -> int | None:
        """Largest number of inputs allowed (``None`` = unbounded)."""
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return None

    @property
    def is_inverting(self) -> bool:
        """Return ``True`` for NOT/NAND/NOR/XNOR."""
        return self in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR)


@dataclass(frozen=True)
class Gate:
    """A single combinational gate driving one output signal."""

    output: str
    gate_type: GateType
    inputs: tuple[str, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self) -> None:
        arity = len(self.inputs)
        if arity < self.gate_type.min_arity:
            raise CircuitError(
                f"gate {self.gate_type.value!r} driving {self.output!r} needs at "
                f"least {self.gate_type.min_arity} inputs, got {arity}")
        max_arity = self.gate_type.max_arity
        if max_arity is not None and arity > max_arity:
            raise CircuitError(
                f"gate {self.gate_type.value!r} driving {self.output!r} accepts at "
                f"most {max_arity} inputs, got {arity}")
        if len(set(self.inputs)) != arity and self.gate_type in (
                GateType.XOR, GateType.XNOR):
            # x ^ x is legal logic but defeats structural reasoning; normalise
            # at construction time by rejecting it so generators stay clean.
            raise CircuitError(
                f"XOR/XNOR gate driving {self.output!r} has duplicated inputs")

    @property
    def arity(self) -> int:
        """Number of inputs."""
        return len(self.inputs)

    def renamed(self, mapping) -> "Gate":
        """Return a copy with all signal names passed through ``mapping``."""
        return Gate(output=mapping(self.output), gate_type=self.gate_type,
                    inputs=tuple(mapping(s) for s in self.inputs), name=self.name)


def evaluate_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a gate function on Boolean input values (0/1)."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.BUF:
        return values[0] & 1
    if gate_type is GateType.NOT:
        return 1 - (values[0] & 1)
    if gate_type is GateType.AND:
        return int(all(values))
    if gate_type is GateType.NAND:
        return 1 - int(all(values))
    if gate_type is GateType.OR:
        return int(any(values))
    if gate_type is GateType.NOR:
        return 1 - int(any(values))
    if gate_type is GateType.XOR:
        return reduce(lambda a, b: a ^ b, (v & 1 for v in values), 0)
    if gate_type is GateType.XNOR:
        return 1 - reduce(lambda a, b: a ^ b, (v & 1 for v in values), 0)
    raise CircuitError(f"unknown gate type {gate_type!r}")
