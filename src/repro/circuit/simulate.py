"""Bit-true simulation of netlists.

Simulation serves two purposes: validating the arithmetic generators against
the integer functions they are supposed to implement, and providing the
ground truth used by property-based tests of the vanishing-monomial rule
(every monomial removed by the rule must evaluate to zero on the circuit).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Mapping, Sequence

from repro.circuit.analysis import topological_signals
from repro.circuit.gates import evaluate_gate
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError


def simulate(netlist: Netlist, inputs: Mapping[str, int]) -> dict[str, int]:
    """Evaluate every signal under the given primary-input assignment."""
    values: dict[str, int] = {}
    for name in netlist.inputs:
        if name not in inputs:
            raise CircuitError(f"missing value for primary input {name!r}")
        values[name] = inputs[name] & 1
    for signal in topological_signals(netlist):
        if signal in values:
            continue
        gate = netlist.gate_of(signal)
        values[signal] = evaluate_gate(gate.gate_type,
                                       [values[s] for s in gate.inputs])
    return values


def word_to_bits(value: int, width: int) -> list[int]:
    """Little-endian bit decomposition of ``value`` on ``width`` bits."""
    return [(value >> i) & 1 for i in range(width)]


def bits_to_word(bits: Sequence[int]) -> int:
    """Compose a little-endian bit list into an integer."""
    return sum(bit << i for i, bit in enumerate(bits))


def simulate_words(netlist: Netlist, words: Mapping[str, int],
                   scalars: Mapping[str, int] | None = None,
                   output_prefix: str = "s") -> int:
    """Simulate with word-level operands and return an output word.

    ``words`` maps an input prefix (e.g. ``"a"``) to an integer value that is
    decomposed over the inputs ``a0, a1, ...``.  ``scalars`` assigns
    individual input signals (e.g. a carry-in).  The output word is read from
    the primary outputs named ``output_prefix<i>``.
    """
    assignment: dict[str, int] = {}
    for prefix, value in words.items():
        bits = netlist.input_word(prefix)
        if not bits:
            raise CircuitError(f"no primary inputs with prefix {prefix!r}")
        for i, name in enumerate(bits):
            assignment[name] = (value >> i) & 1
    if scalars:
        assignment.update({k: v & 1 for k, v in scalars.items()})
    values = simulate(netlist, assignment)
    out_bits = netlist.output_word(output_prefix)
    if not out_bits:
        raise CircuitError(f"no primary outputs with prefix {output_prefix!r}")
    return bits_to_word([values[name] for name in out_bits])


def exhaustive_check(netlist: Netlist, reference: Callable[..., int],
                     word_prefixes: Sequence[str], widths: Sequence[int],
                     output_prefix: str = "s", output_width: int | None = None,
                     max_vectors: int | None = None,
                     seed: int = 0) -> tuple[bool, tuple[int, ...] | None]:
    """Compare the netlist against a reference integer function.

    Enumerates all operand combinations when feasible (or ``max_vectors``
    random vectors otherwise) and checks
    ``netlist(prefix values...) == reference(values...) mod 2^output_width``.
    Returns ``(ok, first_failing_operands)``.
    """
    out_bits = netlist.output_word(output_prefix)
    width_out = output_width if output_width is not None else len(out_bits)
    modulus = 1 << width_out
    total = 1
    for width in widths:
        total *= 1 << width
    rng = random.Random(seed)

    def vectors():
        if max_vectors is None or total <= max_vectors:
            yield from itertools.product(*[range(1 << w) for w in widths])
        else:
            for _ in range(max_vectors):
                yield tuple(rng.randrange(1 << w) for w in widths)

    for operands in vectors():
        words = dict(zip(word_prefixes, operands))
        got = simulate_words(netlist, words, output_prefix=output_prefix) % modulus
        expected = reference(*operands) % modulus
        if got != expected:
            return False, operands
    return True, None
