"""Gate-level circuit substrate: netlists, analysis, simulation, Verilog I/O."""

from repro.circuit.gates import GateType, Gate, evaluate_gate
from repro.circuit.netlist import Netlist
from repro.circuit.analysis import (
    fanout_counts,
    signal_levels,
    topological_signals,
    transitive_fanin,
)
from repro.circuit.simulate import simulate, simulate_words, exhaustive_check
from repro.circuit.mutate import inject_bug, list_mutations

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "evaluate_gate",
    "exhaustive_check",
    "fanout_counts",
    "inject_bug",
    "list_mutations",
    "signal_levels",
    "simulate",
    "simulate_words",
    "topological_signals",
    "transitive_fanin",
]
