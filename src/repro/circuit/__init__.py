"""Gate-level circuit substrate: netlists, analysis, simulation, Verilog I/O.

Everything above this package manipulates circuits through
:class:`~repro.circuit.netlist.Netlist` — a named DAG of single-output
gates (:mod:`repro.circuit.gates`) with declared primary inputs/outputs
and word-level accessors used by the generators and specifications.
Supporting modules: :mod:`~repro.circuit.analysis` (fanout counts,
topological orders, level maps — the inputs of substitution ordering),
:mod:`~repro.circuit.simulate` (bit- and word-level evaluation,
exhaustive equivalence checks for the small widths the tests pin),
:mod:`~repro.circuit.verilog` (structural gate-level Verilog reader and
writer; the netlist content hash of the result cache is the written
Verilog), and :mod:`~repro.circuit.mutate` (single-gate fault injection
for the refutation and counterexample test campaigns).
"""

from repro.circuit.gates import GateType, Gate, evaluate_gate
from repro.circuit.netlist import Netlist
from repro.circuit.analysis import (
    fanout_counts,
    signal_levels,
    topological_signals,
    transitive_fanin,
)
from repro.circuit.simulate import simulate, simulate_words, exhaustive_check
from repro.circuit.mutate import inject_bug, list_mutations

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "evaluate_gate",
    "exhaustive_check",
    "fanout_counts",
    "inject_bug",
    "list_mutations",
    "signal_levels",
    "simulate",
    "simulate_words",
    "topological_signals",
    "transitive_fanin",
]
