"""SAT-based combinational equivalence checking (CEC) baseline.

The stand-in for the paper's commercial-equivalence column: the circuit
under verification and a golden array multiplier are joined into a miter
(:func:`~repro.baselines.sat.miter.build_miter`), Tseitin-encoded into
CNF (:mod:`~repro.baselines.sat.cnf`), and handed to the built-in CDCL
solver (:class:`~repro.baselines.sat.solver.CdclSolver` — watched
literals, first-UIP learning, restarts).  A satisfying assignment is a
primary-input counterexample; UNSAT proves equivalence; the
``sat_conflict_budget`` / ``time_budget_s`` budgets bound the search and
surface as ``verdict="budget"`` reports, mirroring the paper's timeout
entries.  Registered as backend ``sat-cec`` in :mod:`repro.api.registry`.
"""

from repro.baselines.sat.cnf import CNF, tseitin_encode
from repro.baselines.sat.solver import CdclSolver, SolverResult
from repro.baselines.sat.miter import build_miter, sat_equivalence_check

__all__ = [
    "CNF",
    "CdclSolver",
    "SolverResult",
    "build_miter",
    "sat_equivalence_check",
    "tseitin_encode",
]
