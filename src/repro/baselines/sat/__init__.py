"""SAT-based combinational equivalence checking (CEC) baseline."""

from repro.baselines.sat.cnf import CNF, tseitin_encode
from repro.baselines.sat.solver import CdclSolver, SolverResult
from repro.baselines.sat.miter import build_miter, sat_equivalence_check

__all__ = [
    "CNF",
    "CdclSolver",
    "SolverResult",
    "build_miter",
    "sat_equivalence_check",
    "tseitin_encode",
]
