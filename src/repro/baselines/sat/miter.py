"""Miter construction and SAT-based combinational equivalence checking.

This is the stand-in for the commercial equivalence checker / ABC ``cec``
column of the paper's tables (DESIGN.md §3): the circuit under verification
is compared against a golden reference circuit by building a miter (XOR of
corresponding outputs, OR-ed together) and asking a CDCL SAT solver whether
the miter output can be 1.  ``UNSAT`` means the circuits are equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.sat.cnf import CNF, tseitin_encode
from repro.baselines.sat.solver import CdclSolver
from repro.circuit.netlist import Netlist
from repro.errors import SatError


@dataclass
class SatCheckResult:
    """Outcome of a SAT-based equivalence check."""

    status: str                      # "equivalent", "different", "unknown"
    conflicts: int = 0
    decisions: int = 0
    num_variables: int = 0
    num_clauses: int = 0
    elapsed_s: float = 0.0
    counterexample: dict[str, int] | None = None

    @property
    def equivalent(self) -> bool:
        """True iff the two circuits were proven equivalent."""
        return self.status == "equivalent"

    @property
    def timed_out(self) -> bool:
        """True iff the solver gave up (conflict or time budget exceeded)."""
        return self.status == "unknown"


def build_miter(left: Netlist, right: Netlist) -> tuple[CNF, dict[str, int], int]:
    """Encode ``left`` and ``right`` over shared inputs and build the miter.

    Returns the CNF, the shared signal-to-variable map of the *left* circuit
    and the miter output variable (to be asserted true).  The circuits must
    have identical primary input and output names.
    """
    if set(left.inputs) != set(right.inputs):
        raise SatError("miter circuits must have the same primary inputs")
    if set(left.outputs) != set(right.outputs):
        raise SatError("miter circuits must have the same primary outputs")

    cnf = CNF()
    left_map: dict[str, int] = {}
    cnf, left_map = tseitin_encode(left, cnf, left_map)
    # Share input variables, keep separate variables for the right circuit's
    # internal and output signals.
    right_map: dict[str, int] = {name: left_map[name] for name in right.inputs}
    cnf, right_map = tseitin_encode(right, cnf, right_map)

    xor_outputs: list[int] = []
    for name in left.outputs:
        diff = cnf.new_variable()
        a, b = left_map[name], right_map[name]
        cnf.add_clause((-diff, a, b))
        cnf.add_clause((-diff, -a, -b))
        cnf.add_clause((diff, -a, b))
        cnf.add_clause((diff, a, -b))
        xor_outputs.append(diff)

    miter = cnf.new_variable()
    for diff in xor_outputs:
        cnf.add_clause((miter, -diff))
    cnf.add_clause(tuple(xor_outputs) + (-miter,))
    cnf.add_clause((miter,))
    return cnf, left_map, miter


def sat_equivalence_check(circuit: Netlist, golden: Netlist,
                          conflict_limit: int | None = 2_000_000,
                          time_budget_s: float | None = None) -> SatCheckResult:
    """Check equivalence of ``circuit`` against ``golden`` with CDCL SAT.

    Returns ``equivalent`` on UNSAT, ``different`` (plus a counterexample
    assignment of the primary inputs) on SAT, and ``unknown`` when the
    conflict or time budget is exhausted — the latter corresponds to the
    ``TO`` entries of the paper's tables.
    """
    cnf, left_map, _miter = build_miter(circuit, golden)
    solver = CdclSolver(cnf, conflict_limit=conflict_limit,
                        time_budget_s=time_budget_s)
    outcome = solver.solve()
    result = SatCheckResult(
        status="unknown", conflicts=outcome.conflicts,
        decisions=outcome.decisions, num_variables=cnf.num_variables,
        num_clauses=cnf.num_clauses, elapsed_s=outcome.elapsed_s)
    if outcome.is_unsat:
        result.status = "equivalent"
    elif outcome.is_sat:
        result.status = "different"
        result.counterexample = {
            name: int(outcome.model.get(var, False))
            for name, var in left_map.items() if circuit.is_input(name)}
    return result
