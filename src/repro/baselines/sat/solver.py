"""A compact CDCL SAT solver.

Implements the standard conflict-driven clause-learning loop with two-watched
literals, first-UIP conflict analysis, VSIDS-style activity ordering, phase
saving and geometric restarts.  It is intentionally written for clarity over
raw speed — its role in the reproduction is to *be* the conventional
SAT-based equivalence checker that multipliers defeat, so the qualitative
blow-up matters more than constant factors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.sat.cnf import CNF


@dataclass
class SolverResult:
    """Outcome of a SAT call."""

    status: str                       # "sat", "unsat" or "unknown"
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    elapsed_s: float = 0.0

    @property
    def is_sat(self) -> bool:
        """True iff a satisfying assignment was found."""
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        """True iff the formula was proven unsatisfiable."""
        return self.status == "unsat"


class CdclSolver:
    """Conflict-driven clause-learning solver for CNF formulas."""

    def __init__(self, cnf: CNF, conflict_limit: int | None = None,
                 time_budget_s: float | None = None) -> None:
        self.num_vars = cnf.num_variables
        self.conflict_limit = conflict_limit
        self.time_budget_s = time_budget_s

        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assignment: list[int] = [0] * (self.num_vars + 1)   # 0/1/-1
        self.level: list[int] = [0] * (self.num_vars + 1)
        self.reason: list[int | None] = [None] * (self.num_vars + 1)
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.activity: list[float] = [0.0] * (self.num_vars + 1)
        self.phase: list[bool] = [False] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unsat = False

        for clause in cnf.clauses:
            self._add_clause(list(dict.fromkeys(clause)))

    # -- clause management ------------------------------------------------------

    def _add_clause(self, literals: list[int]) -> None:
        if any(-lit in literals for lit in literals):
            return  # tautology
        if not literals:
            self._unsat = True
            return
        if len(literals) == 1:
            lit = literals[0]
            value = self._value(lit)
            if value == -1:
                self._unsat = True
            elif value == 0:
                self._enqueue(lit, None)
            return
        index = len(self.clauses)
        self.clauses.append(literals)
        for lit in literals[:2]:
            self.watches.setdefault(-lit, []).append(index)

    # -- assignment helpers -----------------------------------------------------

    def _value(self, literal: int) -> int:
        value = self.assignment[abs(literal)]
        if value == 0:
            return 0
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: int | None) -> None:
        variable = abs(literal)
        self.assignment[variable] = 1 if literal > 0 else -1
        self.level[variable] = len(self.trail_lim)
        self.reason[variable] = reason
        self.phase[variable] = literal > 0
        self.trail.append(literal)

    def _current_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation ------------------------------------------------------------

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or ``None``."""
        queue_pos = getattr(self, "_qhead", 0)
        while queue_pos < len(self.trail):
            literal = self.trail[queue_pos]
            queue_pos += 1
            self.propagations += 1
            watch_list = self.watches.get(literal, [])
            new_watch_list = []
            index_pos = 0
            while index_pos < len(watch_list):
                clause_index = watch_list[index_pos]
                index_pos += 1
                clause = self.clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == -literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_watch_list.append(clause_index)
                    continue
                # Search for a replacement watch.
                replaced = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != -1:
                        clause[1], clause[position] = clause[position], clause[1]
                        self.watches.setdefault(-clause[1], []).append(clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause_index)
                if self._value(first) == -1:
                    # Conflict: keep remaining watches and report.
                    new_watch_list.extend(watch_list[index_pos:])
                    self.watches[literal] = new_watch_list
                    self._qhead = len(self.trail)
                    return clause_index
                self._enqueue(first, clause_index)
            self.watches[literal] = new_watch_list
        self._qhead = len(self.trail)
        return None

    # -- conflict analysis --------------------------------------------------------

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        learned: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = None
        clause = self.clauses[conflict_index]
        trail_index = len(self.trail) - 1
        current_level = self._current_level()

        while True:
            for lit in clause:
                if literal is not None and lit == literal:
                    continue
                variable = abs(lit)
                if seen[variable] or self.level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self.level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next literal to resolve on.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            literal = self.trail[trail_index]
            variable = abs(literal)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                learned.insert(0, -literal)
                break
            reason_index = self.reason[variable]
            clause = self.clauses[reason_index] if reason_index is not None else []
            literal = literal  # resolve on this literal
        # Back-jump level = second highest level in the learned clause.
        if len(learned) == 1:
            backtrack_level = 0
        else:
            backtrack_level = max(self.level[abs(lit)] for lit in learned[1:])
        return learned, backtrack_level

    def _bump(self, variable: int) -> None:
        self.activity[variable] += self.var_inc
        if self.activity[variable] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _decay(self) -> None:
        self.var_inc /= self.var_decay

    # -- backtracking -------------------------------------------------------------

    def _backtrack(self, target_level: int) -> None:
        while self._current_level() > target_level:
            mark = self.trail_lim.pop()
            while len(self.trail) > mark:
                literal = self.trail.pop()
                self.assignment[abs(literal)] = 0
                self.reason[abs(literal)] = None
        self._qhead = len(self.trail)

    # -- decisions ---------------------------------------------------------------

    def _decide(self) -> int | None:
        best_var = None
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if self.assignment[variable] == 0 and self.activity[variable] > best_activity:
                best_var = variable
                best_activity = self.activity[variable]
        if best_var is None:
            return None
        return best_var if self.phase[best_var] else -best_var

    # -- main loop ----------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> SolverResult:
        """Run the CDCL loop and return the result."""
        start = time.perf_counter()
        if self._unsat:
            return SolverResult("unsat", elapsed_s=time.perf_counter() - start)
        self._qhead = 0
        if assumptions:
            for literal in assumptions:
                if self._value(literal) == -1:
                    return SolverResult("unsat",
                                        elapsed_s=time.perf_counter() - start)
                if self._value(literal) == 0:
                    self._enqueue(literal, None)
        restart_limit = 100

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self._current_level() == 0:
                    return self._result("unsat", start)
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches.setdefault(-learned[0], []).append(index)
                    self.watches.setdefault(-learned[1], []).append(index)
                    self._enqueue(learned[0], index)
                self._decay()
                if (self.conflict_limit is not None
                        and self.conflicts >= self.conflict_limit):
                    return self._result("unknown", start)
                if (self.time_budget_s is not None
                        and time.perf_counter() - start > self.time_budget_s):
                    return self._result("unknown", start)
                if self.conflicts % restart_limit == 0:
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
            else:
                decision = self._decide()
                if decision is None:
                    return self._result("sat", start)
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(decision, None)

    def _result(self, status: str, start: float) -> SolverResult:
        model = {}
        if status == "sat":
            model = {v: self.assignment[v] > 0
                     for v in range(1, self.num_vars + 1)}
        return SolverResult(status=status, model=model, conflicts=self.conflicts,
                            decisions=self.decisions,
                            propagations=self.propagations,
                            elapsed_s=time.perf_counter() - start)


def solve_cnf(cnf: CNF, conflict_limit: int | None = None,
              time_budget_s: float | None = None) -> SolverResult:
    """Convenience wrapper: solve a CNF from scratch."""
    if cnf.num_variables == 0:
        return SolverResult("sat")
    return CdclSolver(cnf, conflict_limit, time_budget_s).solve()
