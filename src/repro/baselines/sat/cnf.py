"""CNF formulas and Tseitin encoding of netlists.

Literals follow the DIMACS convention: variables are positive integers,
negative integers denote negated literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.errors import SatError


@dataclass
class CNF:
    """A CNF formula: a list of clauses over integer variables."""

    num_variables: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)

    def new_variable(self) -> int:
        """Allocate a fresh variable."""
        self.num_variables += 1
        return self.num_variables

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause, validating the literals."""
        clause = tuple(literals)
        if not clause:
            raise SatError("cannot add an empty clause explicitly")
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_variables:
                raise SatError(f"literal {literal} out of range")
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Render in DIMACS format (for debugging / external solvers)."""
        lines = [f"p cnf {self.num_variables} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"


def _encode_and(cnf: CNF, output: int, inputs: list[int]) -> None:
    for literal in inputs:
        cnf.add_clause((-output, literal))
    cnf.add_clause(tuple(-l for l in inputs) + (output,))


def _encode_or(cnf: CNF, output: int, inputs: list[int]) -> None:
    for literal in inputs:
        cnf.add_clause((output, -literal))
    cnf.add_clause(tuple(inputs) + (-output,))


def _encode_xor2(cnf: CNF, output: int, a: int, b: int) -> None:
    cnf.add_clause((-output, a, b))
    cnf.add_clause((-output, -a, -b))
    cnf.add_clause((output, -a, b))
    cnf.add_clause((output, a, -b))


def tseitin_encode(netlist: Netlist, cnf: CNF | None = None,
                   variable_map: dict[str, int] | None = None
                   ) -> tuple[CNF, dict[str, int]]:
    """Tseitin-encode a netlist into CNF.

    Returns the CNF and the mapping from signal names to CNF variables.  An
    existing ``cnf``/``variable_map`` can be passed to encode two circuits
    over shared primary-input variables (miter construction).
    """
    cnf = cnf or CNF()
    variables = variable_map if variable_map is not None else {}

    def var_of(signal: str) -> int:
        if signal not in variables:
            variables[signal] = cnf.new_variable()
        return variables[signal]

    for name in netlist.inputs:
        var_of(name)

    for gate in netlist.gates():
        out = var_of(gate.output)
        ins = [var_of(s) for s in gate.inputs]
        kind = gate.gate_type
        if kind is GateType.CONST0:
            cnf.add_clause((-out,))
        elif kind is GateType.CONST1:
            cnf.add_clause((out,))
        elif kind is GateType.BUF:
            cnf.add_clause((-out, ins[0]))
            cnf.add_clause((out, -ins[0]))
        elif kind is GateType.NOT:
            cnf.add_clause((-out, -ins[0]))
            cnf.add_clause((out, ins[0]))
        elif kind is GateType.AND:
            _encode_and(cnf, out, ins)
        elif kind is GateType.NAND:
            aux = cnf.new_variable()
            _encode_and(cnf, aux, ins)
            cnf.add_clause((-out, -aux))
            cnf.add_clause((out, aux))
        elif kind is GateType.OR:
            _encode_or(cnf, out, ins)
        elif kind is GateType.NOR:
            aux = cnf.new_variable()
            _encode_or(cnf, aux, ins)
            cnf.add_clause((-out, -aux))
            cnf.add_clause((out, aux))
        elif kind in (GateType.XOR, GateType.XNOR):
            current = ins[0]
            for operand in ins[1:-1]:
                aux = cnf.new_variable()
                _encode_xor2(cnf, aux, current, operand)
                current = aux
            if kind is GateType.XOR:
                _encode_xor2(cnf, out, current, ins[-1])
            else:
                aux = cnf.new_variable()
                _encode_xor2(cnf, aux, current, ins[-1])
                cnf.add_clause((-out, -aux))
                cnf.add_clause((out, aux))
        else:  # pragma: no cover - defensive
            raise SatError(f"unsupported gate type {kind!r}")
    return cnf, variables
