"""Conventional equivalence-checking baselines (SAT miter, BDD).

These stand in for the commercial equivalence checker, ABC ``cec`` and the
CPP approach of the paper's comparison columns; see DESIGN.md §3.
"""

from repro.baselines.sat.miter import sat_equivalence_check, SatCheckResult
from repro.baselines.bdd.equivalence import bdd_equivalence_check, BddCheckResult

__all__ = [
    "BddCheckResult",
    "SatCheckResult",
    "bdd_equivalence_check",
    "sat_equivalence_check",
]
