"""Reduced ordered binary decision diagram (ROBDD) baseline.

The decision-diagram column of the paper's comparison: every output bit
of the circuit is built into a shared hash-consed ROBDD
(:class:`~repro.baselines.bdd.bdd.BddManager`, complement-edge-free,
with an ITE computed table) and compared against the BDD of the
word-level product specification
(:func:`~repro.baselines.bdd.equivalence.bdd_equivalence_check`).
Canonical form makes the comparison a pointer equality per output bit —
and also makes the expected failure mode visible: multiplier BDDs grow
exponentially with operand width, so the ``bdd_node_budget`` budget
trips as ``verdict="budget"`` well before wide circuits finish, exactly
like the paper's decision-diagram timeouts.  Registered as backend
``bdd-cec`` in :mod:`repro.api.registry`.
"""

from repro.baselines.bdd.bdd import BddManager
from repro.baselines.bdd.equivalence import bdd_equivalence_check, BddCheckResult

__all__ = ["BddManager", "BddCheckResult", "bdd_equivalence_check"]
