"""Reduced ordered binary decision diagram (ROBDD) baseline."""

from repro.baselines.bdd.bdd import BddManager
from repro.baselines.bdd.equivalence import bdd_equivalence_check, BddCheckResult

__all__ = ["BddManager", "BddCheckResult", "bdd_equivalence_check"]
