"""A compact ROBDD package.

Nodes are stored in a unique table keyed by ``(variable, low, high)``; the
two terminal nodes are ``0`` and ``1``.  Negated edges are not used — the
package favours clarity, its purpose in the reproduction being to exhibit
the classical exponential blow-up of decision diagrams on multiplier
outputs (one of the motivations cited in the paper's introduction).
"""

from __future__ import annotations

from repro.errors import BddError


class BddManager:
    """Manager owning the unique table and the ITE computed table."""

    FALSE = 0
    TRUE = 1

    def __init__(self, num_variables: int, node_budget: int | None = 2_000_000) -> None:
        self.num_variables = num_variables
        self.node_budget = node_budget
        # node id -> (level, low, high); terminals use level = num_variables.
        self._nodes: list[tuple[int, int, int]] = [
            (num_variables, 0, 0), (num_variables, 1, 1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # -- node management --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total number of allocated nodes (including the two terminals)."""
        return len(self._nodes)

    def level(self, node: int) -> int:
        """Variable level of a node (``num_variables`` for terminals)."""
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        """Else-child."""
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        """Then-child."""
        return self._nodes[node][2]

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self.node_budget is not None and len(self._nodes) >= self.node_budget:
            raise BddError(
                f"BDD node budget of {self.node_budget} nodes exceeded")
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def variable(self, level: int) -> int:
        """BDD for a single variable at the given level."""
        if not 0 <= level < self.num_variables:
            raise BddError(f"variable level {level} out of range")
        return self._make_node(level, self.FALSE, self.TRUE)

    # -- boolean operations -------------------------------------------------------

    def ite(self, cond: int, then_node: int, else_node: int) -> int:
        """If-then-else, the universal ROBDD operation."""
        if cond == self.TRUE:
            return then_node
        if cond == self.FALSE:
            return else_node
        if then_node == self.TRUE and else_node == self.FALSE:
            return cond
        if then_node == else_node:
            return then_node
        key = (cond, then_node, else_node)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.level(cond), self.level(then_node), self.level(else_node))

        def cofactor(node: int, phase: bool) -> int:
            if self.level(node) != top:
                return node
            return self.high(node) if phase else self.low(node)

        high = self.ite(cofactor(cond, True), cofactor(then_node, True),
                        cofactor(else_node, True))
        low = self.ite(cofactor(cond, False), cofactor(then_node, False),
                       cofactor(else_node, False))
        result = self._make_node(top, low, high)
        self._ite_cache[key] = result
        return result

    def not_(self, node: int) -> int:
        """Negation."""
        return self.ite(node, self.FALSE, self.TRUE)

    def and_(self, a: int, b: int) -> int:
        """Conjunction."""
        return self.ite(a, b, self.FALSE)

    def or_(self, a: int, b: int) -> int:
        """Disjunction."""
        return self.ite(a, self.TRUE, b)

    def xor(self, a: int, b: int) -> int:
        """Exclusive or."""
        return self.ite(a, self.not_(b), b)

    def apply_gate(self, kind: str, operands: list[int]) -> int:
        """Fold a named gate function over BDD operands."""
        if kind == "not":
            return self.not_(operands[0])
        if kind == "buf":
            return operands[0]
        if kind == "const0":
            return self.FALSE
        if kind == "const1":
            return self.TRUE
        fold = {"and": self.and_, "or": self.or_, "xor": self.xor,
                "nand": self.and_, "nor": self.or_, "xnor": self.xor}.get(kind)
        if fold is None:
            raise BddError(f"unsupported gate kind {kind!r}")
        result = operands[0]
        for operand in operands[1:]:
            result = fold(result, operand)
        if kind in ("nand", "nor", "xnor"):
            result = self.not_(result)
        return result

    # -- queries -------------------------------------------------------------------

    def evaluate(self, node: int, assignment) -> bool:
        """Evaluate a BDD under an assignment indexed by level."""
        while node not in (self.FALSE, self.TRUE):
            level = self.level(node)
            node = self.high(node) if assignment[level] else self.low(node)
        return node == self.TRUE

    def satisfying_assignment(self, node: int) -> dict[int, int] | None:
        """Return one satisfying assignment (levels to 0/1), or ``None``."""
        if node == self.FALSE:
            return None
        assignment: dict[int, int] = {}
        while node != self.TRUE:
            if self.high(node) != self.FALSE:
                assignment[self.level(node)] = 1
                node = self.high(node)
            else:
                assignment[self.level(node)] = 0
                node = self.low(node)
        return assignment

    def size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node``."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current in (self.FALSE, self.TRUE):
                continue
            seen.add(current)
            stack.append(self.low(current))
            stack.append(self.high(current))
        return len(seen) + 2
