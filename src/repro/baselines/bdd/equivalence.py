"""BDD-based verification of arithmetic circuits.

Builds ROBDDs for every output of the circuit and compares them against
BDDs derived from the word-level specification (sum or product of the input
words).  Because ROBDDs for the middle product bits of a multiplier grow
exponentially, this baseline times out (node budget) beyond small widths —
the behaviour the paper's introduction cites for decision-diagram methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.bdd.bdd import BddManager
from repro.circuit.analysis import topological_signals
from repro.circuit.netlist import Netlist
from repro.errors import BddError


@dataclass
class BddCheckResult:
    """Outcome of a BDD equivalence check."""

    status: str                       # "equivalent", "different", "unknown"
    num_nodes: int = 0
    elapsed_s: float = 0.0
    failing_output: str | None = None

    @property
    def equivalent(self) -> bool:
        """True iff every output BDD matched the specification BDD."""
        return self.status == "equivalent"

    @property
    def timed_out(self) -> bool:
        """True iff the node budget was exhausted before completion."""
        return self.status == "unknown"


def _interleaved_levels(netlist: Netlist, a_prefix: str, b_prefix: str) -> dict[str, int]:
    """Interleave the two operand words in the BDD variable order.

    Interleaving ``a0, b0, a1, b1, ...`` is the standard good ordering for
    adders (linear BDDs) and the customary—but still exponential—ordering
    for multipliers.
    """
    a_bits = netlist.input_word(a_prefix)
    b_bits = netlist.input_word(b_prefix)
    order: list[str] = []
    for i in range(max(len(a_bits), len(b_bits))):
        if i < len(a_bits):
            order.append(a_bits[i])
        if i < len(b_bits):
            order.append(b_bits[i])
    for name in netlist.inputs:
        if name not in order:
            order.append(name)
    return {name: level for level, name in enumerate(order)}


def _build_output_bdds(netlist: Netlist, manager: BddManager,
                       levels: dict[str, int]) -> dict[str, int]:
    nodes: dict[str, int] = {}
    for name in netlist.inputs:
        nodes[name] = manager.variable(levels[name])
    for signal in topological_signals(netlist):
        if signal in nodes:
            continue
        gate = netlist.gate_of(signal)
        operands = [nodes[s] for s in gate.inputs]
        nodes[signal] = manager.apply_gate(gate.gate_type.value, operands)
    return {name: nodes[name] for name in netlist.outputs}


def _specification_bdds(manager: BddManager, a_levels: list[int],
                        b_levels: list[int], width_out: int,
                        operation: str) -> list[int]:
    """Word-level specification as per-output-bit BDDs (ripple construction)."""
    a_vars = [manager.variable(level) for level in a_levels]
    b_vars = [manager.variable(level) for level in b_levels]
    if operation == "add":
        sums: list[int] = []
        carry = manager.FALSE
        for i in range(width_out):
            a_bit = a_vars[i] if i < len(a_vars) else manager.FALSE
            b_bit = b_vars[i] if i < len(b_vars) else manager.FALSE
            partial = manager.xor(a_bit, b_bit)
            sums.append(manager.xor(partial, carry))
            carry = manager.or_(manager.and_(a_bit, b_bit),
                                manager.and_(partial, carry))
        return sums
    if operation == "multiply":
        accumulator = [manager.FALSE] * width_out
        for j, b_bit in enumerate(b_vars):
            row = [manager.FALSE] * width_out
            for i, a_bit in enumerate(a_vars):
                if i + j < width_out:
                    row[i + j] = manager.and_(a_bit, b_bit)
            carry = manager.FALSE
            for k in range(width_out):
                partial = manager.xor(accumulator[k], row[k])
                new_bit = manager.xor(partial, carry)
                carry = manager.or_(manager.and_(accumulator[k], row[k]),
                                    manager.and_(partial, carry))
                accumulator[k] = new_bit
        return accumulator
    raise BddError(f"unsupported specification operation {operation!r}")


def bdd_equivalence_check(netlist: Netlist, operation: str = "multiply",
                          a_prefix: str = "a", b_prefix: str = "b",
                          out_prefix: str = "s",
                          node_budget: int | None = 2_000_000) -> BddCheckResult:
    """Verify a circuit against the word-level add/multiply specification with BDDs."""
    start = time.perf_counter()
    levels = _interleaved_levels(netlist, a_prefix, b_prefix)
    manager = BddManager(len(netlist.inputs), node_budget=node_budget)
    try:
        outputs = _build_output_bdds(netlist, manager, levels)
        out_names = netlist.output_word(out_prefix)
        spec = _specification_bdds(
            manager,
            [levels[name] for name in netlist.input_word(a_prefix)],
            [levels[name] for name in netlist.input_word(b_prefix)],
            len(out_names), operation)
    except BddError:
        return BddCheckResult(status="unknown", num_nodes=manager.num_nodes,
                              elapsed_s=time.perf_counter() - start)
    for i, name in enumerate(out_names):
        if outputs[name] != spec[i]:
            return BddCheckResult(status="different", num_nodes=manager.num_nodes,
                                  elapsed_s=time.perf_counter() - start,
                                  failing_output=name)
    return BddCheckResult(status="equivalent", num_nodes=manager.num_nodes,
                          elapsed_s=time.perf_counter() - start)
