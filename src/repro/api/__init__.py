"""repro.api — the unified verification service layer.

One front door over every verification backend of the reproduction: typed
requests, a pluggable backend registry, a service façade over the parallel
runner, and one structured report schema shared by the Python API, the CLI
``--json`` output, and the on-disk result cache.

Quickstart::

    from repro.api import Budgets, VerificationRequest, VerificationService

    service = VerificationService(budgets=Budgets(time_budget_s=60.0))
    report = service.submit(
        VerificationRequest.from_architecture("BP-WT-CL", 8, method="mt-lr"))
    assert report.verdict == "verified"
    print(report.to_json(indent=2))

Report JSON schema (version 5)
------------------------------

``VerificationReport.to_json()`` emits one object with exactly these keys,
in this order (absent values are ``null``, never omitted)::

    {
      "schema": 5,                  // report schema version
      "verdict": "verified",        // "verified" | "refuted" | "budget"
                                    //   | "not_applicable" | "error"
      "status": "ok",               // legacy table-row status: "ok" |
                                    //   "mismatch" | "TO" | "n/a" |
                                    //   "error" | "crash"
      "method": "mt-lr",            // registered backend name
      "circuit": "BP-WT-CL",        // architecture or module name
      "width": 8,                   // operand width in bits, if known
      "specification": "...",       // human-readable spec description
      "time": "00:00:00.12",        // display time; "TO" on budget trips
      "time_s": 0.123,              // total wall-clock seconds
      "reason": null,               // budget-trip / failure reason
      "counterexample": null,       // {"a0": 1, ...} input assignment
      "remainder": null,            // non-zero remainder (algebraic refute)
      "counters": {...}             // backend counters, declared order:
                                    //   algebraic: cancelled_vanishing_
                                    //     monomials, reduction_time_s,
                                    //     rewrite_time_s, num_polynomials,
                                    //     num_monomials,
                                    //     max_polynomial_terms,
                                    //     max_monomial_variables,
                                    //     peak_remainder
                                    //   sat-cec: conflicts, clauses
                                    //   bdd-cec: bdd_nodes
      "certificate": null,          // checkable proof certificate
                                    //   (repro.certify format) when the
                                    //   request asked for one
      "cross_check": null,          // independent refutation cross-check:
                                    //   {"backend": "sat-cec", "status",
                                    //    "agrees",
                                    //    "counterexample_confirmed", ...}
      "attempts": null,             // retry/fallback history when the
                                    //   report took more than one attempt
                                    //   (see docs/robustness.md); null on
                                    //   the untroubled path
      "incremental": null           // cone counters of an incremental
                                    //   request: {"cones",
                                    //   "replayed_cones", "reduced_cones",
                                    //   "cache_hits", "cache_misses"}
                                    //   (see docs/incremental.md); null
                                    //   on the from-scratch path — incl.
                                    //   the transparent fallback when a
                                    //   cone exceeds the per-cone input
                                    //   limit
    }

The serialization is canonical — fixed top-level key order, counters in
declared order — so ``from_json(to_json(r)).to_json()`` is byte-identical
to ``to_json(r)`` for every backend.  The CLI exit codes are driven by the
verdict: 0 = verified (or not applicable), 2 = refuted, 3 = budget trip /
timeout, 1 = usage or infrastructure error.

Schema history: version 1 is the original wire schema; version 2 was
reserved to align the report version with the on-disk result-cache
``SCHEMA`` (which advanced when cached rows became report documents) and
is wire-identical to 1; version 3 appends ``certificate`` and
``cross_check``; version 4 appends ``attempts`` (the resilience layer's
retry/fallback history); version 5 appends ``incremental`` (the cone
counters of the per-cone proof-reuse path, ``docs/incremental.md``).
``from_json``/``from_dict`` accept schema 1-4 documents (the newer
fields read as ``null``) and re-serialize them as schema 5 — see the
migration table in ``docs/http-api.md``.

The registry (:mod:`repro.api.registry`) is imported eagerly — it is pure
data and safe everywhere — while the request/report/service modules load
lazily so lower layers (``repro.verification.engine`` derives its method
list from the registry) can import this package without cycles.
"""

from __future__ import annotations

from repro.api.registry import (
    BackendSpec,
    algebraic_backend_names,
    backend_names,
    backends,
    get_backend,
    has_backend,
    register,
)

__all__ = [
    "BackendSpec",
    "Budgets",
    "VerificationReport",
    "VerificationRequest",
    "VerificationService",
    "algebraic_backend_names",
    "backend_names",
    "backends",
    "get_backend",
    "has_backend",
    "register",
]

_LAZY = {
    "Budgets": ("repro.api.request", "Budgets"),
    "VerificationRequest": ("repro.api.request", "VerificationRequest"),
    "VerificationReport": ("repro.api.report", "VerificationReport"),
    "VerificationService": ("repro.api.service", "VerificationService"),
}


def __getattr__(name: str):
    """Lazy exports (PEP 562) — breaks the engine <-> api import cycle."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
