"""The unified verification report — one schema over every backend.

A :class:`VerificationReport` wraps the outcome of any registered backend
(the membership-testing :class:`~repro.verification.result.VerificationResult`,
the SAT baseline's :class:`~repro.baselines.sat.miter.SatCheckResult`, the
BDD baseline's :class:`~repro.baselines.bdd.equivalence.BddCheckResult`, or
a budget trip) behind one verdict/timing/counter schema with stable JSON
round-tripping.  The same schema is what ``repro-verify ... --json`` emits,
what the on-disk :class:`~repro.experiments.runner.ResultCache` persists,
and what the experiment runner's table rows are derived from.

Serialization is *canonical*: :meth:`VerificationReport.to_json` always
emits the top-level keys in the fixed schema order with the backend
counters in their declared order, so ``from_json(to_json(r)).to_json()``
is byte-identical to ``to_json(r)`` for every backend.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import VerificationError

#: Version of the report JSON schema (see ``repro/api/__init__.py``).
#: Version 3 added the ``certificate`` and ``cross_check`` fields;
#: version 4 added the ``attempts`` retry/fallback history; version 5
#: added the ``incremental`` cone-level counters of the per-cone
#: proof-reuse path (:mod:`repro.incremental`).
REPORT_SCHEMA = 5

#: Older schema versions :meth:`VerificationReport.from_dict` still parses.
#: Versions 1 and 2 carried the same keys minus ``certificate`` and
#: ``cross_check``; version 3 additionally lacked ``attempts``; version 4
#: additionally lacked ``incremental``.  All four parse with the missing
#: fields as ``None``.
LEGACY_REPORT_SCHEMAS = (1, 2, 3, 4)

#: Verdicts a report can carry.
VERDICTS = ("verified", "refuted", "budget", "not_applicable", "error")

#: Legacy table-row ``status`` values and the verdict each one maps to.
STATUS_TO_VERDICT = {
    "ok": "verified",
    "mismatch": "refuted",
    "TO": "budget",
    "n/a": "not_applicable",
    "error": "error",
    "crash": "error",
}

#: Exit codes of the CLI commands, driven by the report verdict:
#: 0 = verified, 1 = usage or infrastructure error, 2 = refuted,
#: 3 = budget trip / timeout.  ``not_applicable`` maps to 0 (nothing was
#: refuted and no budget tripped).
EXIT_CODES = {
    "verified": 0,
    "refuted": 2,
    "budget": 3,
    "not_applicable": 0,
    "error": 1,
}

#: Table-row keys that are schema fields rather than backend counters.
_ROW_BASE_KEYS = frozenset((
    "architecture", "width", "method", "status", "time", "time_s",
    "verified", "reason", "certificate", "cross_check", "attempts",
    "incremental",
))


def format_seconds(seconds: float) -> str:
    """Render a duration as ``HH:MM:SS.ss`` (the paper tables' time format)."""
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    secs = seconds % 60
    return f"{hours:02d}:{minutes:02d}:{secs:05.2f}"


@dataclass
class VerificationReport:
    """Outcome of one verification run, uniform across all backends."""

    #: One of :data:`VERDICTS`.
    verdict: str
    #: Backend name (a :mod:`repro.api.registry` entry).
    method: str
    #: Circuit identity: architecture name for generated circuits,
    #: netlist/module name otherwise.
    circuit: str
    #: Legacy table-row status (``ok``/``mismatch``/``TO``/``n/a``/
    #: ``error``/``crash``); kept so cached rows reproduce exactly.
    status: str = ""
    #: Operand width in bits, when known.
    width: int | None = None
    #: Human-readable specification description, when known.
    specification: str | None = None
    #: Display time: ``HH:MM:SS.ss``, ``"TO"`` on a budget trip, ``"-"``
    #: when no time was measured.
    time: str = "-"
    #: Total wall-clock seconds (``None`` when not measured).
    time_s: float | None = None
    #: Budget-trip or failure reason (``None`` when the run completed).
    reason: str | None = None
    #: Primary-input assignment exposing a mismatch, if one was found.
    counterexample: dict[str, int] | None = None
    #: Non-zero remainder rendered with signal names (algebraic refutations).
    remainder: str | None = None
    #: Backend-specific engine counters, in the backend's declared order.
    counters: dict[str, Any] = field(default_factory=dict)
    #: Wrapped proof-certificate document (``repro.certify`` format), when
    #: the run was asked to emit one and the backend is certifiable.
    certificate: dict | None = None
    #: Counterexample cross-check record attached to ``refuted`` verdicts
    #: (SAT-backend agreement + counterexample simulation), when available.
    cross_check: dict | None = None
    #: Retry/fallback history (``repro.resilience``): one record per
    #: attempt when the run needed more than one, ``None`` on the common
    #: first-attempt-succeeded path so resilience-off output is unchanged.
    attempts: list | None = None
    #: Cone-level counters of the incremental path (``repro.incremental``):
    #: ``cones`` / ``replayed_cones`` / ``reduced_cones`` / ``cache_hits``
    #: / ``cache_misses``.  ``None`` on from-scratch runs, so
    #: incremental-off output is byte-identical to a schema-4 report apart
    #: from the version number.
    incremental: dict | None = None
    #: The wrapped backend result object (in-process runs only; never
    #: serialized — ``from_json`` reports carry ``None``).
    result: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise VerificationError(
                f"unknown verdict {self.verdict!r}; expected one of {VERDICTS}")
        if not self.status:
            self.status = next(s for s, v in STATUS_TO_VERDICT.items()
                               if v == self.verdict)

    # -- derived views ---------------------------------------------------------

    @property
    def verified(self) -> bool | None:
        """Tri-state verdict of the table rows: ``True``/``False``/``None``."""
        if self.verdict == "verified":
            return True
        if self.verdict == "refuted":
            return False
        return None

    @property
    def exit_code(self) -> int:
        """CLI exit code mandated by the verdict (see :data:`EXIT_CODES`)."""
        return EXIT_CODES[self.verdict]

    def summary(self) -> str:
        """One-line human-readable summary."""
        label = {"verified": "VERIFIED", "refuted": "MISMATCH",
                 "budget": "TIMEOUT/BLOW-UP", "not_applicable": "N/A",
                 "error": "ERROR"}[self.verdict]
        timing = f" (total {self.time_s:.2f}s)" if self.time_s is not None else ""
        return f"[{self.method}] {self.circuit}: {label}{timing}"

    # -- canonical JSON --------------------------------------------------------

    def to_dict(self) -> dict:
        """The report as a JSON-ready dict in canonical key order."""
        return {
            "schema": REPORT_SCHEMA,
            "verdict": self.verdict,
            "status": self.status,
            "method": self.method,
            "circuit": self.circuit,
            "width": self.width,
            "specification": self.specification,
            "time": self.time,
            "time_s": self.time_s,
            "reason": self.reason,
            "counterexample": self.counterexample,
            "remainder": self.remainder,
            "counters": dict(self.counters),
            "certificate": self.certificate,
            "cross_check": self.cross_check,
            "attempts": self.attempts,
            "incremental": self.incremental,
        }

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON (compact by default; byte-stable round trip)."""
        separators = (",", ":") if indent is None else None
        return json.dumps(self.to_dict(), ensure_ascii=False,
                          separators=separators, indent=indent)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "VerificationReport":
        """Rebuild a report from :meth:`to_dict` output.

        Accepts the current schema plus every version in
        :data:`LEGACY_REPORT_SCHEMAS`; legacy documents parse with the
        fields added since (``certificate``, ``cross_check``) as ``None``.
        """
        schema = document.get("schema")
        if schema != REPORT_SCHEMA and schema not in LEGACY_REPORT_SCHEMAS:
            raise VerificationError(
                f"unsupported report schema {schema!r}; "
                f"expected {REPORT_SCHEMA} or one of {LEGACY_REPORT_SCHEMAS}")
        counterexample = document.get("counterexample")
        return cls(
            verdict=document["verdict"],
            status=document.get("status", ""),
            method=document["method"],
            circuit=document["circuit"],
            width=document.get("width"),
            specification=document.get("specification"),
            time=document.get("time", "-"),
            time_s=document.get("time_s"),
            reason=document.get("reason"),
            counterexample=dict(counterexample)
            if counterexample is not None else None,
            remainder=document.get("remainder"),
            counters=dict(document.get("counters") or {}),
            certificate=document.get("certificate"),
            cross_check=document.get("cross_check"),
            attempts=list(document["attempts"])
            if document.get("attempts") is not None else None,
            incremental=dict(document["incremental"])
            if document.get("incremental") is not None else None)

    @classmethod
    def from_json(cls, text: str) -> "VerificationReport":
        """Parse a report emitted by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- table-row interoperability --------------------------------------------

    def to_row(self) -> dict:
        """The report as an experiment-runner table row (legacy dict shape).

        Key order matters: cached rows must serialize byte-identically to
        freshly executed ones, so the base keys come first, ``reason`` only
        when set, and the counters in their stored order.
        """
        row = {
            "architecture": self.circuit,
            "width": self.width,
            "method": self.method,
            "status": self.status,
            "time": self.time,
            "time_s": self.time_s,
            "verified": self.verified,
        }
        if self.reason is not None:
            row["reason"] = self.reason
        if self.certificate is not None:
            row["certificate"] = self.certificate
        if self.cross_check is not None:
            row["cross_check"] = self.cross_check
        if self.attempts is not None:
            row["attempts"] = self.attempts
        if self.incremental is not None:
            row["incremental"] = self.incremental
        row.update(self.counters)
        return row

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "VerificationReport":
        """Wrap an experiment-runner table row (exact inverse of :meth:`to_row`)."""
        status = row["status"]
        try:
            verdict = STATUS_TO_VERDICT[status]
        except KeyError:
            raise VerificationError(
                f"unknown row status {status!r}; expected one of "
                f"{tuple(STATUS_TO_VERDICT)}") from None
        counters = {key: value for key, value in row.items()
                    if key not in _ROW_BASE_KEYS}
        return cls(
            verdict=verdict,
            status=status,
            method=row["method"],
            circuit=row["architecture"],
            width=row["width"],
            time=row["time"],
            time_s=row["time_s"],
            reason=row.get("reason"),
            counters=counters,
            certificate=row.get("certificate"),
            cross_check=row.get("cross_check"),
            attempts=row.get("attempts"),
            incremental=row.get("incremental"))

    # -- backend-result constructors -------------------------------------------

    @classmethod
    def from_result(cls, result, circuit: str | None = None,
                    width: int | None = None) -> "VerificationReport":
        """Wrap a membership-testing :class:`VerificationResult`."""
        stats = result.model_statistics
        counters = {
            "cancelled_vanishing_monomials": result.cancelled_vanishing_monomials,
            "reduction_time_s": result.reduction_time_s,
            "rewrite_time_s": result.rewrite_time_s,
            "num_polynomials": stats.num_polynomials,
            "num_monomials": stats.num_monomials,
            "max_polynomial_terms": stats.max_polynomial_terms,
            "max_monomial_variables": stats.max_monomial_variables,
            "peak_remainder": result.reduction_trace.peak_monomials,
        }
        return cls(
            verdict="verified" if result.verified else "refuted",
            status="ok" if result.verified else "mismatch",
            method=result.method,
            circuit=circuit if circuit is not None else result.circuit,
            width=width,
            specification=result.specification,
            time=format_seconds(result.total_time_s),
            time_s=result.total_time_s,
            counterexample=result.counterexample,
            remainder=result.remainder_text if not result.verified else None,
            counters=counters,
            result=result)

    @classmethod
    def from_blowup(cls, error, method: str, circuit: str,
                    width: int | None = None,
                    elapsed_s: float | None = None) -> "VerificationReport":
        """Wrap a :class:`~repro.errors.BlowUpError` budget trip."""
        return cls(
            verdict="budget", status="TO", method=method, circuit=circuit,
            width=width, time="TO", time_s=elapsed_s, reason=str(error))

    @classmethod
    def from_sat_result(cls, result, circuit: str, width: int | None = None,
                        method: str = "sat-cec") -> "VerificationReport":
        """Wrap a SAT-miter :class:`SatCheckResult`."""
        status = {"equivalent": "ok", "different": "mismatch",
                  "unknown": "TO"}[result.status]
        return cls(
            verdict=STATUS_TO_VERDICT[status],
            status=status,
            method=method,
            circuit=circuit,
            width=width,
            time="TO" if result.timed_out else format_seconds(result.elapsed_s),
            time_s=result.elapsed_s,
            counterexample=result.counterexample,
            counters={"conflicts": result.conflicts,
                      "clauses": result.num_clauses},
            result=result)

    @classmethod
    def from_bdd_result(cls, result, circuit: str, width: int | None = None,
                        method: str = "bdd-cec") -> "VerificationReport":
        """Wrap a BDD :class:`BddCheckResult`."""
        status = {"equivalent": "ok", "different": "mismatch",
                  "unknown": "TO"}[result.status]
        return cls(
            verdict=STATUS_TO_VERDICT[status],
            status=status,
            method=method,
            circuit=circuit,
            width=width,
            time="TO" if result.timed_out else format_seconds(result.elapsed_s),
            time_s=result.elapsed_s,
            counters={"bdd_nodes": result.num_nodes},
            result=result)

    @classmethod
    def not_applicable(cls, method: str, circuit: str,
                       width: int | None = None) -> "VerificationReport":
        """A ``-`` table entry: the backend does not apply to this circuit."""
        return cls(verdict="not_applicable", status="n/a", method=method,
                   circuit=circuit, width=width, time="-", time_s=None)
