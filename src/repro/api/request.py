"""Typed verification requests: circuit source + specification + budgets.

A :class:`VerificationRequest` normalizes the three ways a circuit can
reach the service — a generated architecture (name + operand width), an
in-memory :class:`~repro.circuit.netlist.Netlist`, or gate-level Verilog
(path or text) — together with the specification and a single
:class:`Budgets` bundle replacing the historical kwargs sprawl
(``monomial_budget=...``, ``time_budget_s=...``, ``vanishing_cache_limit=...``,
``counterexample_tries=...``, ``sat_conflict_budget=...``, ...).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.api.registry import get_backend
from repro.circuit.netlist import Netlist
from repro.errors import VerificationError

#: Circuit kinds a request can describe (selects generator + default spec).
CIRCUIT_KINDS = ("multiplier", "adder")


@dataclass(frozen=True)
class Budgets:
    """Every resource budget of every backend, in one place.

    The defaults match the historical per-function defaults, so
    ``Budgets()`` reproduces the behaviour of calling the old entry points
    without budget kwargs.  ``None`` disables the corresponding guard
    (except ``counterexample_tries``, which is always bounded).
    """

    #: Abort the GB reduction when the remainder exceeds this many monomials.
    monomial_budget: int | None = 2_000_000
    #: Abort any backend after this many wall-clock seconds.
    time_budget_s: float | None = None
    #: CDCL conflict budget of the SAT baseline.
    sat_conflict_budget: int | None = 200_000
    #: ROBDD node budget of the BDD baseline.
    bdd_node_budget: int | None = 1_000_000
    #: Cap on the vanishing-rule verdict cache (whole-cache reset on overflow).
    vanishing_cache_limit: int | None = None
    #: Random assignments tried when searching for a counterexample.
    counterexample_tries: int = 4096
    #: Hard per-job wall-clock limit of batch runs (enforced by killing the
    #: worker process; ``None`` relies on the in-process budgets).
    task_timeout_s: float | None = None

    def replace(self, **changes) -> "Budgets":
        """A copy with the given fields changed."""
        return replace(self, **changes)

    @classmethod
    def from_config(cls, config, task_timeout_s: float | None = None) -> "Budgets":
        """Budgets carried by an :class:`~repro.experiments.runner.ExperimentConfig`."""
        return cls(monomial_budget=config.monomial_budget,
                   time_budget_s=config.time_budget_s,
                   sat_conflict_budget=config.sat_conflict_budget,
                   bdd_node_budget=config.bdd_node_budget,
                   vanishing_cache_limit=getattr(
                       config, "vanishing_cache_limit", None),
                   task_timeout_s=task_timeout_s)


@dataclass(frozen=True)
class VerificationRequest:
    """One verification problem: circuit source, specification, method, budgets.

    Exactly one circuit source must be provided: ``architecture`` (with
    ``width``), ``netlist``, ``verilog_path``, or ``verilog_text``.  The
    :meth:`from_architecture` / :meth:`from_netlist` / :meth:`from_verilog`
    constructors are the convenient spellings.
    """

    method: str = "mt-lr"
    architecture: str | None = None
    width: int | None = None
    netlist: Netlist | None = None
    verilog_path: str | os.PathLike | None = None
    verilog_text: str | None = None
    #: ``"multiplier"`` or ``"adder"`` — selects the generator for
    #: architecture sources and the default specification.
    circuit_kind: str = "multiplier"
    #: ``"multiplier"`` / ``"adder"`` / a ready
    #: :class:`~repro.modeling.spec.Specification`; ``None`` derives it
    #: from ``circuit_kind``.
    specification: object | None = None
    budgets: Budgets = field(default_factory=Budgets)
    find_counterexample: bool = True
    #: Restrict the vanishing rule to the paper's literal XOR-AND pattern.
    xor_and_only: bool = False
    #: Emit a checkable proof certificate (:mod:`repro.certify` format) on
    #: the report; requires a backend whose spec declares ``certifiable``.
    certificate: bool = False
    #: Verify through the per-cone proof-reuse path
    #: (:mod:`repro.incremental`): each output cone is reduced
    #: independently and replayed from the service's cone cache when its
    #: canonical hash is unchanged.  Algebraic methods only; incompatible
    #: with ``certificate`` (the certificate journal is a from-scratch
    #: reduction schedule).
    incremental: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        get_backend(self.method)        # unknown methods fail fast
        if self.circuit_kind not in CIRCUIT_KINDS:
            raise VerificationError(
                f"unknown circuit kind {self.circuit_kind!r}; "
                f"expected one of {CIRCUIT_KINDS}")
        sources = [source for source in
                   (self.architecture, self.netlist, self.verilog_path,
                    self.verilog_text) if source is not None]
        if len(sources) != 1:
            raise VerificationError(
                "exactly one circuit source required: architecture (+width), "
                "netlist, verilog_path, or verilog_text")
        if self.architecture is not None and self.width is None:
            raise VerificationError(
                "architecture sources need an operand width")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_architecture(cls, architecture: str, width: int,
                          method: str = "mt-lr", **kwargs) -> "VerificationRequest":
        """Request on a generated architecture, e.g. ``("BP-WT-CL", 8)``."""
        return cls(method=method, architecture=architecture, width=width,
                   **kwargs)

    @classmethod
    def from_netlist(cls, netlist: Netlist, method: str = "mt-lr",
                     **kwargs) -> "VerificationRequest":
        """Request on an in-memory gate-level netlist."""
        return cls(method=method, netlist=netlist, **kwargs)

    @classmethod
    def from_verilog(cls, path: str | os.PathLike | None = None,
                     text: str | None = None, method: str = "mt-lr",
                     **kwargs) -> "VerificationRequest":
        """Request on gate-level Verilog, from a file path or source text."""
        return cls(method=method, verilog_path=path, verilog_text=text,
                   **kwargs)

    # -- resolution ------------------------------------------------------------

    def resolve_netlist(self) -> Netlist:
        """Materialize the circuit under verification."""
        if self.netlist is not None:
            return self.netlist
        if self.architecture is not None:
            if self.circuit_kind == "adder":
                from repro.generators.adders import generate_adder
                return generate_adder(self.architecture, self.width)
            from repro.generators.multipliers import generate_multiplier
            return generate_multiplier(self.architecture, self.width)
        from repro.circuit.verilog import load_verilog, parse_verilog
        if self.verilog_path is not None:
            return load_verilog(str(self.verilog_path))
        return parse_verilog(self.verilog_text)

    def resolve_specification(self):
        """The specification argument handed to the verification engine."""
        if self.specification is not None:
            return self.specification
        return self.circuit_kind

    def display_name(self, netlist: Netlist | None = None) -> str:
        """Circuit identity used in reports: architecture or module name."""
        if self.architecture is not None:
            return self.architecture
        if netlist is not None:
            return netlist.name
        if self.netlist is not None:
            return self.netlist.name
        if self.verilog_path is not None:
            return Path(self.verilog_path).stem
        return "verilog"
