"""The verification service: one front door over every backend.

:class:`VerificationService` is the programmatic entry point of the
reproduction.  :meth:`~VerificationService.submit` runs a single
:class:`~repro.api.request.VerificationRequest` in-process and returns a
:class:`~repro.api.report.VerificationReport`; budget trips come back as
``verdict="budget"`` reports instead of exceptions.
:meth:`~VerificationService.run_batch` fans many requests across the
persistent worker pool of :class:`~repro.experiments.runner.ParallelRunner`
— crash isolation, hard task timeouts, the on-disk result cache, and
longest-expected-first scheduling included — without the caller touching
runner internals.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Iterator, Sequence

from repro.api.registry import backends, get_backend
from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.errors import BlowUpError, VerificationError


def _certifiable_backends():
    return tuple(spec for spec in backends() if spec.certifiable)


def pool_eligible(request: VerificationRequest) -> bool:
    """True when a request can run through the worker pool / fleet.

    The pool (and the shared result cache keyed by netlist content) only
    handles architecture-sourced multiplier requests with the
    runner-default knobs: no custom specification, no ``xor_and_only``,
    no counterexample search, default seed, and certificates only from
    certifiable backends.  Everything else runs through in-process
    :meth:`VerificationService.submit` with identical semantics.
    """
    return (request.architecture is not None
            and request.circuit_kind == "multiplier"
            and request.specification is None
            and not request.xor_and_only
            and not request.find_counterexample
            and not request.incremental
            and request.seed == 0
            and (not request.certificate
                 or get_backend(request.method).certifiable))


def experiment_config_for(budgets: Budgets,
                          golden_architecture: str = "SP-AR-RC"):
    """Map a budget bundle onto a runner :class:`ExperimentConfig`, verbatim.

    The budgets are authoritative — ``None`` means "guard disabled"
    exactly as in :meth:`VerificationService.submit`, and
    ``REPRO_BENCH_*`` environment overrides do not apply.
    """
    from repro.experiments.runner import ExperimentConfig
    config = ExperimentConfig()
    config.monomial_budget = budgets.monomial_budget
    config.time_budget_s = budgets.time_budget_s
    config.sat_conflict_budget = budgets.sat_conflict_budget
    config.bdd_node_budget = budgets.bdd_node_budget
    config.vanishing_cache_limit = budgets.vanishing_cache_limit
    config.golden_architecture = golden_architecture
    return config


def request_cache_key(request: VerificationRequest,
                      golden_architecture: str = "SP-AR-RC",
                      hasher=None) -> str | None:
    """Content-addressed result-cache key of a request (``None`` = uncacheable).

    The request-level view of
    :func:`repro.experiments.runner.result_cache_key`: only
    :func:`pool_eligible` requests are keyable, and the key is exactly
    the one a pooled :meth:`VerificationService.run_batch` job would use
    under the request's own budgets — so the fleet's shared cache and a
    local batch run address the same entries.
    """
    if not pool_eligible(request):
        return None
    from repro.experiments.runner import VerificationJob, result_cache_key
    job = VerificationJob(request.architecture, request.width, request.method,
                          certificate=request.certificate)
    config = experiment_config_for(request.budgets, golden_architecture)
    return result_cache_key(job, config,
                            task_timeout_s=request.budgets.task_timeout_s,
                            hasher=hasher)


class VerificationService:
    """Submit verification requests against the registered backends.

    Parameters
    ----------
    budgets:
        Service-level default budgets; :meth:`run_batch` jobs run under
        them unless a request carries its own budget group (per-request
        :class:`~repro.api.request.Budgets` are honoured job-by-job).
    golden_architecture:
        Reference architecture the SAT baseline compares against.
    jobs:
        Default worker-process count of :meth:`run_batch`.
    task_timeout_s:
        Default hard per-job wall-clock limit of :meth:`run_batch`.
    cache_dir:
        On-disk result cache directory for :meth:`run_batch` (also
        honours ``REPRO_BENCH_CACHE`` when left unset, like the runner).
    retry_policy:
        A :class:`repro.resilience.RetryPolicy` handed to the worker pool
        of :meth:`run_batch`: crashed and hard-timed-out jobs get further
        attempts on a fresh worker, with the history recorded in the
        report's ``attempts`` field.  ``None`` (the default) keeps the
        report-first-failure behaviour.
    fallback_policy:
        A :class:`repro.resilience.FallbackPolicy` applied to
        ``verdict="budget"`` reports: the tripped backend's degradation
        chain (escalated budgets, then the backends in its registry
        ``degrades_to``) runs in-process until a rung produces a real
        verdict, every rung recorded in ``attempts``.  ``None`` disables
        graceful degradation.
    cone_cache_dir:
        On-disk :class:`~repro.incremental.cache.ConeCache` directory for
        ``incremental=True`` requests: per-cone reduction results are
        replayed across submissions (and across concurrent services
        pointed at the same directory).  ``None`` runs incremental
        requests uncached — still correct, never reused.
    """

    def __init__(self, budgets: Budgets | None = None,
                 golden_architecture: str = "SP-AR-RC",
                 jobs: int = 1,
                 task_timeout_s: float | None = None,
                 cache_dir: str | os.PathLike | None = None,
                 retry_policy=None,
                 fallback_policy=None,
                 cone_cache_dir: str | os.PathLike | None = None) -> None:
        self.budgets = budgets if budgets is not None else Budgets()
        self.golden_architecture = golden_architecture
        self.jobs = jobs
        self.task_timeout_s = task_timeout_s
        self.cache_dir = cache_dir
        self.retry_policy = retry_policy
        self.fallback_policy = fallback_policy
        self.cone_cache_dir = cone_cache_dir
        self._cone_cache = None
        #: Cache hit / fresh-execution counts of the last :meth:`run_batch`.
        self.last_cache_hits = 0
        self.last_executed = 0
        #: Retry attempts / fallback rungs spent by the last :meth:`run_batch`.
        self.last_retries = 0
        self.last_fallbacks = 0

    # -- single requests -------------------------------------------------------

    def submit(self, request: VerificationRequest) -> VerificationReport:
        """Run one request in-process and return its report.

        Budget trips (:class:`~repro.errors.BlowUpError`) are reported as
        ``verdict="budget"``; malformed requests (unknown architecture,
        unparsable Verilog, inapplicable specification) still raise
        :class:`~repro.errors.ReproError` subclasses.  With a
        :attr:`fallback_policy`, a budget verdict degrades through the
        backend's chain (see :meth:`apply_fallback`) before it is
        returned.
        """
        return self.apply_fallback(request, self._submit_once(request))

    def _submit_once(self, request: VerificationRequest) -> VerificationReport:
        """One attempt of :meth:`submit`, with no fallback applied."""
        backend = get_backend(request.method)
        budgets = request.budgets
        if request.certificate and not backend.certifiable:
            raise VerificationError(
                f"backend {backend.name!r} cannot emit proof certificates "
                "(certifiable backends: "
                f"{tuple(s.name for s in _certifiable_backends())})")
        if request.incremental and backend.kind != "algebraic":
            raise VerificationError(
                "incremental verification needs an algebraic backend "
                f"(got {backend.name!r})")
        if request.incremental and request.certificate:
            raise VerificationError(
                "incremental verification cannot emit proof certificates "
                "(the certificate journal is a from-scratch reduction "
                "schedule)")
        netlist = request.resolve_netlist()
        circuit = request.display_name(netlist)
        width = request.width or len(netlist.input_word("a")) or None
        if backend.kind == "algebraic":
            if request.incremental:
                return self._submit_incremental(request, netlist, circuit,
                                                width, budgets)
            return self._submit_algebraic(request, netlist, circuit, width,
                                          budgets)
        if request.resolve_specification() != "multiplier":
            raise VerificationError(
                f"backend {backend.name!r} only supports the multiplier "
                "specification")
        if backend.kind == "sat":
            return self._submit_sat(netlist, circuit, width, budgets,
                                    method=backend.name)
        return self._submit_bdd(netlist, circuit, width, budgets,
                                method=backend.name)

    def _submit_algebraic(self, request: VerificationRequest, netlist,
                          circuit: str, width: int | None,
                          budgets: Budgets) -> VerificationReport:
        from repro.verification.engine import verify
        start = time.perf_counter()
        try:
            result = verify(netlist,
                            specification=request.resolve_specification(),
                            method=request.method,
                            budgets=budgets,
                            xor_and_only=request.xor_and_only,
                            find_counterexample=request.find_counterexample,
                            certificate=request.certificate,
                            seed=request.seed)
        except BlowUpError as error:
            return VerificationReport.from_blowup(
                error, method=request.method, circuit=circuit, width=width,
                elapsed_s=time.perf_counter() - start)
        report = VerificationReport.from_result(result, circuit=circuit,
                                                width=width)
        if request.certificate and result.certificate_data is not None:
            from repro.certify import build_certificate
            report.certificate = build_certificate(result)
        if report.verdict == "refuted":
            report.cross_check = self._cross_check_refutation(
                request, netlist, result, width, budgets)
        return report

    def cone_cache(self):
        """The lazily built :class:`ConeCache` (``None`` when unconfigured)."""
        if self._cone_cache is None and self.cone_cache_dir is not None:
            from repro.incremental.cache import ConeCache
            self._cone_cache = ConeCache(self.cone_cache_dir)
        return self._cone_cache

    def _submit_incremental(self, request: VerificationRequest, netlist,
                            circuit: str, width: int | None,
                            budgets: Budgets) -> VerificationReport:
        """Per-cone verification with proof reuse (``incremental=True``).

        A circuit with a cone wider than the per-cone input limit cannot
        finish on the per-cone path (the per-output normal form is
        exponential in the cone's inputs), so the request transparently
        falls back to the from-scratch engine — identical verdict, and the
        report's ``incremental`` block stays ``null``.  Genuine budget
        trips keep the from-scratch contract: a ``budget`` verdict.
        """
        from repro.incremental.verify import ConeTooWideError, incremental_verify
        start = time.perf_counter()
        try:
            outcome = incremental_verify(
                netlist,
                specification=request.resolve_specification(),
                method=request.method,
                budgets=budgets,
                xor_and_only=request.xor_and_only,
                find_counterexample=request.find_counterexample,
                seed=request.seed,
                cache=self.cone_cache())
        except ConeTooWideError:
            return self._submit_algebraic(request, netlist, circuit, width,
                                          budgets)
        except BlowUpError as error:
            return VerificationReport.from_blowup(
                error, method=request.method, circuit=circuit, width=width,
                elapsed_s=time.perf_counter() - start)
        report = VerificationReport.from_result(outcome.result,
                                                circuit=circuit, width=width)
        report.incremental = dict(outcome.counters)
        if report.verdict == "refuted":
            report.cross_check = self._cross_check_refutation(
                request, netlist, outcome.result, width, budgets)
        return report

    def _cross_check_refutation(self, request: VerificationRequest, netlist,
                                result, width: int | None,
                                budgets: Budgets) -> dict:
        """Cross-check an algebraic refutation outside the algebra.

        Two independent angles, recorded verbatim on the report: the
        counterexample (when one was found) is replayed through gate-level
        simulation against the word-level arithmetic relation, and — for
        multiplier specifications with a known width — the SAT miter
        baseline is run against the golden architecture, whose
        ``different`` answer must agree with the refutation.
        """
        record: dict = {"backend": "sat-cec", "status": "not_applicable",
                        "agrees": None, "counterexample_confirmed": None}
        confirmed = self._confirm_counterexample(request, netlist,
                                                 result.counterexample)
        record["counterexample_confirmed"] = confirmed
        if request.resolve_specification() == "multiplier" and width:
            from repro.baselines.sat.miter import sat_equivalence_check
            from repro.generators.multipliers import generate_multiplier
            golden = generate_multiplier(self.golden_architecture, width)
            sat = sat_equivalence_check(
                netlist, golden, conflict_limit=budgets.sat_conflict_budget,
                time_budget_s=budgets.time_budget_s)
            record["status"] = sat.status
            record["agrees"] = (sat.status == "different"
                                if sat.status != "unknown" else None)
            record["conflicts"] = sat.conflicts
        return record

    def _confirm_counterexample(self, request: VerificationRequest, netlist,
                                counterexample) -> bool | None:
        """Gate-level replay of a counterexample against the word relation."""
        specification = request.resolve_specification()
        if counterexample is None or specification not in ("multiplier",
                                                           "adder"):
            return None
        from repro.circuit.simulate import simulate
        from repro.errors import CircuitError
        try:
            values = simulate(netlist, counterexample)
        except CircuitError:
            return None
        def word(names):
            return sum(values[name] << i for i, name in enumerate(names))
        a_bits = netlist.input_word("a")
        b_bits = netlist.input_word("b")
        s_bits = netlist.output_word("s")
        if not a_bits or not b_bits or not s_bits:
            return None
        a, b, s = word(a_bits), word(b_bits), word(s_bits)
        expected = a * b if specification == "multiplier" else a + b
        return s != expected % (1 << len(s_bits))

    def _submit_sat(self, netlist, circuit: str, width: int | None,
                    budgets: Budgets, method: str = "sat-cec",
                    ) -> VerificationReport:
        from repro.baselines.sat.miter import sat_equivalence_check
        from repro.generators.multipliers import generate_multiplier
        if not width:
            raise VerificationError(
                f"{method} needs the operand width to build the golden "
                "reference (no 'a' input word found)")
        golden = generate_multiplier(self.golden_architecture, width)
        result = sat_equivalence_check(
            netlist, golden, conflict_limit=budgets.sat_conflict_budget,
            time_budget_s=budgets.time_budget_s)
        return VerificationReport.from_sat_result(result, circuit=circuit,
                                                  width=width, method=method)

    def _submit_bdd(self, netlist, circuit: str, width: int | None,
                    budgets: Budgets, method: str = "bdd-cec",
                    ) -> VerificationReport:
        from repro.baselines.bdd.equivalence import bdd_equivalence_check
        result = bdd_equivalence_check(netlist, "multiply",
                                       node_budget=budgets.bdd_node_budget)
        return VerificationReport.from_bdd_result(result, circuit=circuit,
                                                  width=width, method=method)

    # -- graceful degradation --------------------------------------------------

    def apply_fallback(self, request: VerificationRequest,
                        report: VerificationReport) -> VerificationReport:
        """Degrade a ``budget`` report through the backend's fallback chain.

        Each rung (an escalated-budget re-run of the same backend, then
        the registry-declared fallback backends) runs in-process; the
        first rung that yields a non-budget verdict wins.  Every rung is
        appended to the report's ``attempts`` history — continuing a
        history the worker pool already started when the budget row came
        out of :meth:`run_batch` with crash retries behind it.  A rung
        that cannot run at all (the fallback backend rejects the request,
        e.g. a non-multiplier specification) is recorded as ``error`` and
        skipped.  If every rung trips its budget too, the last rung's
        report is returned — with the full history, so the caller can see
        the degradation was exhausted.
        """
        import dataclasses

        from repro.errors import ReproError
        from repro.resilience.policy import attempt_entry, escalate_budgets
        if self.fallback_policy is None or report.verdict != "budget":
            return report
        chain = self.fallback_policy.chain_for(request.method)
        if not chain:
            return report
        history = list(report.attempts or ())
        if not history:
            history.append(attempt_entry(1, request.method, "initial",
                                         "budget", reason=report.reason))
        attempt = history[-1]["attempt"]
        for step in chain:
            attempt += 1
            self.last_fallbacks += 1
            if step.kind == "escalate":
                derived = dataclasses.replace(
                    request,
                    budgets=escalate_budgets(request.budgets,
                                             step.budget_scale))
                kind = "escalate"
                extra = {"budget_scale": step.budget_scale}
            else:
                target = get_backend(step.method)
                derived = dataclasses.replace(
                    request, method=step.method,
                    certificate=request.certificate and target.certifiable)
                kind = "fallback"
                extra = {}
            try:
                report = self._submit_once(derived)
            except ReproError as error:
                history.append(attempt_entry(
                    attempt, derived.method, kind, "error",
                    reason=f"{type(error).__name__}: {error}", **extra))
                continue
            outcome = ("budget" if report.verdict == "budget"
                       else report.verdict)
            history.append(attempt_entry(attempt, derived.method, kind,
                                         outcome, reason=report.reason,
                                         **extra))
            if report.verdict != "budget":
                break
        report.attempts = history
        return report

    # -- batches ---------------------------------------------------------------

    def _experiment_config(self, budgets: Budgets):
        """Map the budget bundle onto the runner's config, verbatim.

        The budgets are authoritative — ``None`` means "guard disabled"
        exactly as in :meth:`submit`, and ``REPRO_BENCH_*`` environment
        overrides do not apply (callers who want them can build their
        budgets with ``Budgets.from_config(ExperimentConfig
        .from_environment())``).
        """
        return experiment_config_for(budgets, self.golden_architecture)

    def run_batch(self, requests: Sequence[VerificationRequest],
                  jobs: int | None = None,
                  on_report: Callable[[VerificationReport], None] | None = None,
                  ) -> list[VerificationReport]:
        """Run many requests and return their reports in request order.

        Architecture-sourced multiplier requests with the runner-default
        knobs are fanned across the persistent worker pool (with the
        on-disk cache and longest-expected-first scheduling); everything
        else — netlist/Verilog/adder sources, ``xor_and_only``, a custom
        seed, or ``find_counterexample=True`` (the pool never searches
        counterexamples) — falls back to in-process :meth:`submit`, so a
        request always means the same thing through either path.
        Per-request budget groups are honoured: a pooled request whose
        :class:`~repro.api.request.Budgets` differ from the service-level
        :attr:`budgets` carries its own job-level
        :class:`~repro.experiments.runner.ExperimentConfig` (and hard task
        timeout) into the pool, and the result cache keys each job by the
        budgets it actually ran under.  A per-request
        ``budgets.task_timeout_s`` of ``None`` falls back to the
        service-level hard limit rather than disabling it.
        """
        from repro.experiments.runner import ParallelRunner, VerificationJob
        requests = list(requests)
        pooled: list[int] = []
        reports: dict[int, VerificationReport] = {}
        for index, request in enumerate(requests):
            if pool_eligible(request):
                pooled.append(index)
        runner = ParallelRunner(
            self._experiment_config(self.budgets),
            workers=jobs if jobs is not None else self.jobs,
            task_timeout_s=self.budgets.task_timeout_s
            if self.budgets.task_timeout_s is not None else self.task_timeout_s,
            cache_dir=self.cache_dir,
            retry_policy=self.retry_policy)
        grid = []
        for index in pooled:
            request = requests[index]
            if request.budgets == self.budgets:
                config = task_timeout_s = None
            else:
                config = self._experiment_config(request.budgets)
                task_timeout_s = request.budgets.task_timeout_s
            grid.append(VerificationJob(request.architecture, request.width,
                                        request.method, config=config,
                                        task_timeout_s=task_timeout_s,
                                        certificate=request.certificate))
        rows = runner.run(grid)
        self.last_cache_hits = runner.last_cache_hits
        self.last_executed = runner.last_executed
        self.last_retries = runner.last_retries
        self.last_fallbacks = 0
        for index, row in zip(pooled, rows):
            reports[index] = self.apply_fallback(
                requests[index], VerificationReport.from_row(row))
        for index, request in enumerate(requests):
            if index not in reports:
                reports[index] = self.submit(request)
        ordered = [reports[i] for i in range(len(requests))]
        if on_report is not None:
            for report in ordered:
                on_report(report)
        return ordered

    def iter_batch(self, requests: Sequence[VerificationRequest],
                   jobs: int | None = None,
                   ) -> Iterator[VerificationReport]:
        """Yield reports in request order, each as soon as it is available.

        The streaming sibling of :meth:`run_batch` (same pooling rules,
        same budget-group handling, same cache): pooled jobs fan across
        the worker pool on a background thread and their rows are handed
        over index-by-index, so a huge grid's first report is yielded
        while later jobs are still executing instead of after the whole
        batch.  Non-pooled requests run inline at their position.  The
        ``last_*`` counters are final once the generator is exhausted.
        """
        from repro.experiments.runner import ParallelRunner, VerificationJob
        requests = list(requests)
        self.last_fallbacks = 0
        runner = ParallelRunner(
            self._experiment_config(self.budgets),
            workers=jobs if jobs is not None else self.jobs,
            task_timeout_s=self.budgets.task_timeout_s
            if self.budgets.task_timeout_s is not None else self.task_timeout_s,
            cache_dir=self.cache_dir,
            retry_policy=self.retry_policy)
        grid: list[VerificationJob] = []
        positions: dict[int, int] = {}      # id(job) -> request index
        pooled: set[int] = set()
        for index, request in enumerate(requests):
            if not pool_eligible(request):
                continue
            if request.budgets == self.budgets:
                config = task_timeout_s = None
            else:
                config = self._experiment_config(request.budgets)
                task_timeout_s = request.budgets.task_timeout_s
            job = VerificationJob(request.architecture, request.width,
                                  request.method, config=config,
                                  task_timeout_s=task_timeout_s,
                                  certificate=request.certificate)
            # Distinct grid entries are distinct objects even for equal
            # jobs, so object identity maps each row to its request index.
            positions[id(job)] = index
            grid.append(job)
            pooled.add(index)

        condition = threading.Condition()
        rows: dict[int, dict] = {}
        failure: list[BaseException] = []

        def on_row(job, row) -> None:
            with condition:
                rows[positions[id(job)]] = row
                condition.notify_all()

        def run_pool() -> None:
            try:
                runner.run(grid, on_result=on_row)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                failure.append(error)
            with condition:
                condition.notify_all()

        worker = None
        if grid:
            worker = threading.Thread(target=run_pool, daemon=True,
                                      name="repro-iter-batch")
            worker.start()
        finished = False
        try:
            for index, request in enumerate(requests):
                if index in pooled:
                    with condition:
                        while index not in rows and not failure:
                            condition.wait()
                    if failure:
                        raise failure[0]
                    report = self.apply_fallback(
                        request, VerificationReport.from_row(rows[index]))
                else:
                    report = self.submit(request)
                yield report
            finished = True
        finally:
            # An abandoned generator (the consumer went away mid-stream)
            # must not block on the pool — the daemon thread drains alone.
            if finished or failure:
                if worker is not None:
                    worker.join()
                self.last_cache_hits = runner.last_cache_hits
                self.last_executed = runner.last_executed
                self.last_retries = runner.last_retries

    def run_grid(self, architectures: Sequence[str], widths: Sequence[int],
                 methods: Sequence[str], jobs: int | None = None,
                 ) -> list[VerificationReport]:
        """Convenience: the full (architecture, width, method) grid as a batch.

        Grid requests skip the counterexample search (the experiment-runner
        contract: table rows report verdicts and counters, not witnesses),
        which keeps every cell eligible for the worker pool.
        """
        requests = [
            VerificationRequest.from_architecture(architecture, width, method,
                                                  budgets=self.budgets,
                                                  find_counterexample=False)
            for width in widths for architecture in architectures
            for method in methods]
        return self.run_batch(requests, jobs=jobs)
