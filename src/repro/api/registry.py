"""The pluggable verification-backend registry — the single source of truth.

Every verification backend of the reproduction (the four membership-testing
methods plus the SAT and BDD equivalence-checking baselines) registers
itself here as a :class:`BackendSpec` carrying capability metadata: whether
it can produce counterexamples, whether it reports substitution-engine
counters (``--stats``), which execution kind dispatches it, and its relative
expected cost for longest-expected-first scheduling.

Everything that used to hardcode a method list derives from this module:

* ``repro.verification.engine.METHODS`` is :func:`algebraic_backend_names`,
* ``repro.experiments.runner.JOB_METHODS`` is :func:`backend_names` and its
  scheduling rank table is :func:`scheduling_rank`,
* the CLI ``--method`` / ``--methods`` choices come from
  :func:`backend_names`,
* the evaluation tables' column lists (:data:`TABLE1_BASELINES`,
  :data:`TABLE2_BASELINES`, :data:`COMPARISON_METHODS`) are declared and
  validated here.

The module is deliberately *pure data* — it imports nothing but the
standard library and ``repro.errors`` — so every layer (algebra,
verification, experiments, CLI) can consume it without import cycles.
New backends plug in through :func:`register`; the experiment runner
dispatches on :attr:`BackendSpec.kind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VerificationError

#: Execution kinds understood by the runner's uniform dispatch.
KINDS = ("algebraic", "sat", "bdd")


@dataclass(frozen=True)
class BackendSpec:
    """Capability metadata of one registered verification backend."""

    #: Registry name, e.g. ``"mt-lr"`` — what the CLI and API accept.
    name: str
    #: Execution kind: ``"algebraic"`` runs the membership-testing engine,
    #: ``"sat"`` the CDCL miter check, ``"bdd"`` the ROBDD comparison.
    kind: str
    #: One-line description (shown in API/CLI documentation).
    description: str = ""
    #: Can the backend produce a primary-input counterexample on a mismatch?
    supports_counterexample: bool = False
    #: Does the backend report substitution-engine counters (``--stats``)?
    supports_stats: bool = False
    #: Can the backend emit a checkable proof certificate
    #: (``repro.certify`` format, requested via ``certificate=true``)?
    certifiable: bool = False
    #: Relative expected-cost rank for scheduling (higher = start earlier
    #: in a batch); never used for results, only for assignment order.
    cost_rank: int = 0
    #: Budget names (``repro.api.Budgets`` fields) the backend honours.
    budget_keys: tuple[str, ...] = field(default_factory=tuple)
    #: Graceful-degradation chain (``repro.resilience.FallbackPolicy``):
    #: backends to fall back to, in order, after this backend trips a
    #: budget — e.g. the algebraic methods degrade to the ``sat-cec``
    #: golden-reference baseline.  Empty = this backend is terminal.
    degrades_to: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise VerificationError(
                f"backend {self.name!r} declares unknown kind {self.kind!r}; "
                f"expected one of {KINDS}")


_REGISTRY: dict[str, BackendSpec] = {}


def register(spec: BackendSpec) -> BackendSpec:
    """Register a backend; the name must be unique."""
    if spec.name in _REGISTRY:
        raise VerificationError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a backend (intended for tests plugging in temporary backends)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend by name; raises with the valid choices on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise VerificationError(
            f"unknown method {name!r}; expected one of "
            f"{backend_names()}") from None


def has_backend(name: str) -> bool:
    """True iff ``name`` is a registered backend."""
    return name in _REGISTRY


def backend_names() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


def backends() -> tuple[BackendSpec, ...]:
    """All registered backend specs, in registration order."""
    return tuple(_REGISTRY.values())


def algebraic_backend_names() -> tuple[str, ...]:
    """The membership-testing methods (the engine's ``METHODS``)."""
    return tuple(spec.name for spec in _REGISTRY.values()
                 if spec.kind == "algebraic")


def baseline_backend_names() -> tuple[str, ...]:
    """The conventional CEC baselines (everything non-algebraic)."""
    return tuple(spec.name for spec in _REGISTRY.values()
                 if spec.kind != "algebraic")


def scheduling_rank(name: str) -> int:
    """Expected-cost rank for longest-expected-first batch scheduling."""
    spec = _REGISTRY.get(name)
    return spec.cost_rank if spec is not None else 0


# ---------------------------------------------------------------------------
# Built-in backends
#
# Registration order is the canonical presentation order everywhere
# (engine METHODS, runner JOB_METHODS, CLI choices), so it is kept
# stable: the four membership tests first, then the two baselines.
# ---------------------------------------------------------------------------

_ALGEBRAIC_BUDGETS = ("monomial_budget", "time_budget_s",
                      "vanishing_cache_limit", "counterexample_tries")

register(BackendSpec(
    name="mt-lr", kind="algebraic",
    description="The paper's method: membership testing with logic "
                "reduction rewriting — XOR rewriting with the XOR-AND "
                "vanishing rule applied after every substitution, then "
                "common rewriting — before the Gröbner-basis reduction of "
                "the word-level specification. Verifies every catalog "
                "architecture at every tested width, which is why it is "
                "the cheapest-ranked algebraic backend for scheduling. "
                "Honours monomial_budget and time_budget_s (trips report "
                "verdict=budget), vanishing_cache_limit (verdict-cache "
                "cap), and counterexample_tries; produces "
                "simulation-validated counterexamples on refutations and "
                "full substitution-engine counters (--stats).",
    supports_counterexample=True, supports_stats=True, certifiable=True,
    cost_rank=0,
    budget_keys=_ALGEBRAIC_BUDGETS,
    degrades_to=("sat-cec",)))

register(BackendSpec(
    name="mt-fo", kind="algebraic",
    description="Membership testing with fanout rewriting [Farahmandi & "
                "Alizadeh]: variables read by more than one gate (plus "
                "primary inputs/outputs) are kept, everything else is "
                "substituted away, and no vanishing rule runs. The "
                "comparison baseline of Tables I/II — it survives the "
                "array/ripple-carry designs but blows up on tree "
                "accumulators, hence its high scheduling cost rank. Same "
                "budget keys and capability flags as the other "
                "membership-testing backends (monomial_budget, "
                "time_budget_s, vanishing_cache_limit, "
                "counterexample_tries).",
    supports_counterexample=True, supports_stats=True, certifiable=True,
    cost_rank=4,
    budget_keys=_ALGEBRAIC_BUDGETS,
    degrades_to=("sat-cec",)))

register(BackendSpec(
    name="mt-naive", kind="algebraic",
    description="Membership testing on the raw gate-level Gröbner basis: "
                "no rewriting at all, the specification is divided "
                "directly by one polynomial per gate. Exists to "
                "demonstrate the intermediate-remainder blow-up that "
                "motivates rewriting (the Section III adder observation), "
                "so it carries the highest scheduling cost rank and is "
                "expected to trip monomial_budget/time_budget_s into "
                "verdict=budget beyond small widths. Counterexamples and "
                "engine counters work as in the other algebraic backends.",
    supports_counterexample=True, supports_stats=True, certifiable=True,
    cost_rank=5,
    budget_keys=_ALGEBRAIC_BUDGETS,
    degrades_to=("sat-cec",)))

register(BackendSpec(
    name="mt-xor", kind="algebraic",
    description="XOR rewriting with the vanishing rule but without the "
                "common-rewriting pass — the Section IV-B ablation "
                "isolating how much of MT-LR's power comes from each "
                "rewriting stage. Scheduling-ranked just above mt-lr; "
                "honours the same budget keys (monomial_budget, "
                "time_budget_s, vanishing_cache_limit, "
                "counterexample_tries) and reports the same "
                "counterexamples and substitution-engine counters.",
    supports_counterexample=True, supports_stats=True, certifiable=True,
    cost_rank=1,
    budget_keys=_ALGEBRAIC_BUDGETS,
    degrades_to=("sat-cec",)))

register(BackendSpec(
    name="sat-cec", kind="sat",
    description="The conventional-CEC stand-in: a miter between the "
                "circuit under verification and a golden array multiplier "
                "of the same width, Tseitin-encoded and solved by the "
                "built-in CDCL solver. A satisfying assignment is a "
                "primary-input counterexample; UNSAT proves equivalence. "
                "Honours sat_conflict_budget (CDCL conflict cap) and "
                "time_budget_s, both reported as verdict=budget — the "
                "expected fate on wide multipliers, mirroring the paper's "
                "commercial-checker timeouts. Multiplier specification "
                "only; no substitution-engine counters.",
    supports_counterexample=True, supports_stats=False, cost_rank=2,
    budget_keys=("sat_conflict_budget", "time_budget_s")))

register(BackendSpec(
    name="bdd-cec", kind="bdd",
    description="The decision-diagram stand-in: every output bit is built "
                "into a shared ROBDD and compared against the word-level "
                "product specification; canonical form makes each "
                "comparison a pointer equality. Honours bdd_node_budget — "
                "multiplier BDDs grow exponentially with operand width, "
                "so the budget trips to verdict=budget well before wide "
                "circuits finish, like the paper's decision-diagram "
                "column. Multiplier specification only; reports the peak "
                "node count but no counterexamples (a differing BDD pair "
                "is not materialized into an assignment).",
    supports_counterexample=False, supports_stats=False, cost_rank=3,
    budget_keys=("bdd_node_budget",)))


# ---------------------------------------------------------------------------
# Paper-table column selections (declared here so no other module carries a
# hardcoded method list; validated against the registry at import time).
# ---------------------------------------------------------------------------

#: Baseline columns of Table I (simple-partial-product multipliers).
TABLE1_BASELINES: tuple[str, ...] = ("sat-cec", "bdd-cec")
#: Baseline columns of Table II (Booth multipliers; the paper reports no
#: decision-diagram column there, and the CPP stand-in is derived from
#: ``sat-cec`` with Booth support disabled).
TABLE2_BASELINES: tuple[str, ...] = ("sat-cec",)
#: The membership-testing comparison columns of Tables I/II.
COMPARISON_METHODS: tuple[str, ...] = ("mt-fo", "mt-lr")
#: The rewriting-ablation columns (Section IV-B).
ABLATION_METHODS: tuple[str, ...] = ("mt-fo", "mt-xor", "mt-lr")
#: The adder blow-up comparison (Section III observation).
ADDER_BLOWUP_METHODS: tuple[str, ...] = ("mt-naive", "mt-fo", "mt-lr")

for _name in (TABLE1_BASELINES + TABLE2_BASELINES + COMPARISON_METHODS
              + ABLATION_METHODS + ADDER_BLOWUP_METHODS):
    get_backend(_name)
for _spec in backends():
    for _name in _spec.degrades_to:
        get_backend(_name)
del _name, _spec
