"""repro — formal verification of integer multipliers with Gröbner bases and logic reduction.

A Python reproduction of *"Formal Verification of Integer Multipliers by
Combining Gröbner Basis with Logic Reduction"* (Sayed-Ahmed, Große, Kühne,
Soeken, Drechsler — DATE 2016).

The package provides:

* a gate-level netlist substrate and an arithmetic-circuit generator covering
  the paper's benchmark architectures (``repro.circuit``, ``repro.generators``),
* a multilinear polynomial algebra and Gröbner-basis machinery
  (``repro.algebra``),
* the membership-testing verification engines MT-Naive, MT-FO and MT-LR with
  the XOR-AND vanishing rule (``repro.modeling``, ``repro.verification``),
* SAT- and BDD-based equivalence-checking baselines (``repro.baselines``),
* the benchmark harness regenerating the paper's Tables I–III
  (``repro.experiments``),
* the unified service layer — typed requests, pluggable backend registry,
  structured JSON reports (``repro.api``),
* the HTTP/async front end serving all of the above over the network
  (``repro.server``, ``repro-verify serve``).

Quickstart::

    from repro.api import VerificationRequest, VerificationService

    service = VerificationService()
    report = service.submit(
        VerificationRequest.from_architecture("BP-WT-CL", 8, method="mt-lr"))
    assert report.verdict == "verified"
"""

from repro.errors import (
    AlgebraError,
    BddError,
    BlowUpError,
    CircuitError,
    ModelingError,
    ReproError,
    SatError,
    VerificationError,
)
from repro.generators import generate_adder, generate_multiplier
from repro.verification import verify, verify_adder, verify_multiplier

__version__ = "0.3.0"

__all__ = [
    "AlgebraError",
    "BddError",
    "BlowUpError",
    "CircuitError",
    "ModelingError",
    "ReproError",
    "SatError",
    "VerificationError",
    "__version__",
    "generate_adder",
    "generate_multiplier",
    "verify",
    "verify_adder",
    "verify_multiplier",
]
