"""Mutation campaigns: the fault-injection sweep as a first-class workload.

A campaign enumerates every single-gate mutation
(:func:`repro.circuit.mutate.list_mutations`) over an architecture×width
grid, verifies each mutant through
:class:`~repro.api.service.VerificationService` on the incremental per-cone
path with one shared :class:`~repro.incremental.cache.ConeCache`, and emits
one JSON-lines row per mutant.  Consecutive mutants of one circuit differ
in a single gate, so after the first few rows almost every cone replays
from the cache — the workload the ROADMAP's per-cone proof reuse exists
for.  A sampled subset of rows is additionally re-verified from scratch
(``cross_check``), pinning the incremental path to the differential
reference.

Rows are appended and flushed one by one, so an interrupted campaign
resumes (``resume=True``) executing only the unfinished mutants.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.api.request import Budgets, VerificationRequest

#: Worker-process state built once per worker by :func:`_init_worker`.
_WORKER = {}


@dataclass(frozen=True)
class CampaignTask:
    """One campaign cell: a mutant (or the unmutated baseline) to verify."""

    architecture: str
    width: int
    #: Index into ``list_mutations`` order; ``-1`` is the baseline circuit.
    index: int
    #: Stable row id (``<arch>-w<width>-<mutation key>`` / ``...-baseline``).
    id: str


def enumerate_tasks(architectures: Sequence[str], widths: Sequence[int],
                    sample: int | None = None, seed: int = 0,
                    limit: int | None = None) -> list[CampaignTask]:
    """The campaign task list: baseline + mutants per grid cell.

    ``sample`` caps the mutants *per cell* via a seeded draw (kept in
    ``list_mutations`` order), so the same (architectures, widths, sample,
    seed) always yields the same task list — resume files and cross-check
    subsets depend on that.
    """
    from repro.circuit.mutate import list_mutations
    from repro.generators.multipliers import generate_multiplier

    tasks: list[CampaignTask] = []
    for architecture in architectures:
        for width in widths:
            netlist = generate_multiplier(architecture, width)
            cell = f"{architecture}-w{width}"
            tasks.append(CampaignTask(architecture, width, -1,
                                      f"{cell}-baseline"))
            mutants = [
                CampaignTask(architecture, width, index,
                             f"{cell}-{mutation.key}")
                for index, mutation in enumerate(list_mutations(netlist))]
            if sample is not None and sample < len(mutants):
                rng = random.Random(f"campaign:{seed}:{cell}")
                mutants = sorted(rng.sample(mutants, sample),
                                 key=lambda task: task.index)
            tasks.extend(mutants)
    if limit is not None:
        tasks = tasks[:limit]
    return tasks


def _build_service(method: str, budgets: Budgets,
                   cone_cache_dir: str | None):
    from repro.api.service import VerificationService
    return VerificationService(budgets=budgets,
                               cone_cache_dir=cone_cache_dir)


def _init_worker(method: str, budgets: Budgets,
                 cone_cache_dir: str | None) -> None:
    _WORKER["service"] = _build_service(method, budgets, cone_cache_dir)
    _WORKER["method"] = method
    _WORKER["budgets"] = budgets


def _execute_task(service, task: CampaignTask, method: str,
                  budgets: Budgets, cross_check: bool) -> dict:
    """Verify one campaign cell incrementally; optionally cross-check."""
    from repro.circuit.mutate import apply_mutation, list_mutations
    from repro.generators.multipliers import generate_multiplier

    netlist = generate_multiplier(task.architecture, task.width)
    mutation = None
    if task.index >= 0:
        mutation = list_mutations(netlist)[task.index]
        netlist = apply_mutation(netlist, mutation)
    request = VerificationRequest.from_netlist(
        netlist, method=method, budgets=budgets,
        find_counterexample=False, incremental=True)
    report = service.submit(request)
    row = {
        "id": task.id,
        "architecture": task.architecture,
        "width": task.width,
        "mutation": mutation.describe() if mutation is not None else None,
        "verdict": report.verdict,
        "status": report.status,
        "time_s": report.time_s,
        "incremental": report.incremental,
    }
    if cross_check:
        reference = service.submit(
            dataclasses.replace(request, incremental=False))
        row["cross_check"] = {
            "verdict": reference.verdict,
            "agrees": reference.verdict == report.verdict,
        }
    return row


def _pool_task(args) -> dict:
    task, cross_check = args
    return _execute_task(_WORKER["service"], task, _WORKER["method"],
                         _WORKER["budgets"], cross_check)


def _finished_ids(out_path: Path) -> set[str]:
    """Row ids already present in a (possibly torn) campaign output file."""
    finished: set[str] = set()
    try:
        lines = out_path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return finished
    for line in lines:
        try:
            row = json.loads(line)
            finished.add(row["id"])
        except (ValueError, KeyError, TypeError):
            continue  # torn trailing line of an interrupted run
    return finished


def run_campaign(architectures: Sequence[str], widths: Sequence[int],
                 method: str = "mt-lr", *,
                 budgets: Budgets | None = None,
                 cone_cache_dir: str | None = None,
                 out_path: str | Path | None = None,
                 resume: bool = False,
                 sample: int | None = None,
                 seed: int = 0,
                 cross_check: int = 0,
                 limit: int | None = None,
                 jobs: int = 1,
                 on_row: Callable[[dict], None] | None = None) -> dict:
    """Run a mutation campaign and return its summary.

    One JSONL row per task is appended to ``out_path`` (when given) as it
    completes; with ``resume=True`` tasks whose id already appears there
    are skipped.  ``cross_check`` picks that many mutant rows (seeded) to
    re-verify from scratch, asserting verdict agreement row by row.  With
    ``jobs > 1`` the tasks fan across worker processes that share the
    on-disk cone cache (entries publish atomically, so concurrent writers
    are safe).
    """
    if budgets is None:
        budgets = Budgets()
    tasks = enumerate_tasks(architectures, widths, sample=sample, seed=seed,
                            limit=limit)
    checked_ids: set[str] = set()
    if cross_check > 0:
        mutant_ids = [task.id for task in tasks if task.index >= 0]
        rng = random.Random(f"cross-check:{seed}")
        checked_ids = set(rng.sample(mutant_ids,
                                     min(cross_check, len(mutant_ids))))
    skipped = 0
    if resume and out_path is not None:
        finished = _finished_ids(Path(out_path))
        pending = [task for task in tasks if task.id not in finished]
        skipped = len(tasks) - len(pending)
        tasks = pending

    verdicts: dict[str, int] = {}
    hits = misses = 0
    cross_checked = disagreements = 0
    out_file = None
    if out_path is not None:
        Path(out_path).parent.mkdir(parents=True, exist_ok=True)
        out_file = open(out_path, "a", encoding="utf-8")
        if out_file.tell():
            # An interrupted run can leave a torn trailing line with no
            # newline; appending straight after it would swallow the next
            # row.  Start on a fresh line instead.
            with open(out_path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    out_file.write("\n")

    def consume(row: dict) -> None:
        nonlocal hits, misses, cross_checked, disagreements
        verdicts[row["verdict"]] = verdicts.get(row["verdict"], 0) + 1
        counters = row.get("incremental") or {}
        hits += counters.get("cache_hits", 0)
        misses += counters.get("cache_misses", 0)
        check = row.get("cross_check")
        if check is not None:
            cross_checked += 1
            if not check["agrees"]:
                disagreements += 1
        if out_file is not None:
            out_file.write(json.dumps(row, separators=(",", ":")) + "\n")
            out_file.flush()
        if on_row is not None:
            on_row(row)

    work = [(task, task.id in checked_ids) for task in tasks]
    try:
        if jobs > 1 and len(work) > 1:
            context = multiprocessing.get_context()
            with context.Pool(jobs, initializer=_init_worker,
                              initargs=(method, budgets,
                                        cone_cache_dir)) as pool:
                for row in pool.imap(_pool_task, work):
                    consume(row)
        else:
            service = _build_service(method, budgets, cone_cache_dir)
            for task, check in work:
                consume(_execute_task(service, task, method, budgets, check))
    finally:
        if out_file is not None:
            out_file.close()

    total_cones = hits + misses
    return {
        "method": method,
        "seed": seed,
        "tasks": len(tasks) + skipped,
        "executed": len(tasks),
        "skipped": skipped,
        "verdicts": verdicts,
        "cone_cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total_cones) if total_cones else 0.0,
        },
        "cross_checked": cross_checked,
        "cross_check_disagreements": disagreements,
        "out": str(out_path) if out_path is not None else None,
    }
