"""Incremental verification: compose per-cone normal forms under the spec.

The word-level specifications of this reproduction (multiplier and adder)
are *linear* in the output variables, so the Gröbner-basis remainder
factors along output cones: reduce each output bit ``s_i`` to its unique
multilinear normal form ``R_i`` over the primary inputs (over ℤ, no
coefficient modulus — the normal form in ℤ[X]/(x²−x) is independent of the
substitution schedule and rewriting scheme), substitute ``s_i := R_i`` into
the specification polynomial, and apply the coefficient modulus once at the
end.  The surviving term set and all coefficients modulo ``2^|S|`` agree
exactly with the from-scratch reduction — verdicts and counterexamples are
identical; only the integer representatives of coefficients may differ by
multiples of the modulus (e.g. ``-128`` vs ``+128`` mod 256), because the
from-scratch engine drops-but-never-normalizes coefficients mid-run.  This
path renders the canonical symmetric-range representative instead (see
``docs/incremental.md``).

Per-cone results are replayed from a :class:`~repro.incremental.cache
.ConeCache` when the cone's canonical hash is unchanged, so re-verifying a
single-gate mutant re-reduces only the cones the mutation reaches.

The per-output normal form is exponential in the cone's primary-input
count (cross-column cancellation needs the joint reduction), so circuits
with a cone wider than ``max_cone_inputs`` are refused up front with
:class:`ConeTooWideError`; the service falls back to the from-scratch
engine for those.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.monomial import bits_of
from repro.algebra.polynomial import Polynomial
from repro.api.request import Budgets
from repro.circuit.netlist import Netlist
from repro.errors import BlowUpError
from repro.incremental.cache import ConeCache
from repro.incremental.cones import (
    Cone,
    ConePartition,
    cone_subnetlist,
    partition_cones,
)
from repro.modeling.model import AlgebraicModel
from repro.modeling.spec import Specification
from repro.verification.reduction import (
    ReductionOptions,
    ReductionTrace,
    groebner_basis_reduction,
)
from repro.verification.result import ModelStatistics, VerificationResult


#: Widest cone (in primary inputs) the per-cone path will reduce.  A cone's
#: multilinear normal form — and the reduction's peak — is exponential in
#: its input count (an 8-bit multiplier's ``s6`` cone, 14 inputs, peaks near
#: 700k monomials where the whole from-scratch reduction stays in the
#: thousands, because cross-column cancellation only happens when the output
#: bits are reduced jointly).  12 inputs bounds the normal form at 4096
#: terms and keeps the worst attempted cone around a quarter second.
DEFAULT_MAX_CONE_INPUTS = 12


class ConeTooWideError(BlowUpError):
    """A cone exceeds ``max_cone_inputs``; per-cone reduction is refused.

    Subclasses :class:`~repro.errors.BlowUpError` so direct callers see the
    familiar budget-trip contract, while
    :class:`~repro.api.service.VerificationService` distinguishes this
    *structural* refusal (fall back to the from-scratch engine, which does
    not suffer the per-column blow-up) from a genuine budget trip (report a
    ``budget`` verdict — from-scratch would trip the same budgets).
    """


@dataclass
class IncrementalOutcome:
    """A :class:`VerificationResult` plus the cone-level accounting."""

    result: VerificationResult
    #: ``cones`` / ``replayed_cones`` / ``reduced_cones`` / ``cache_hits``
    #: / ``cache_misses`` — the counters surfaced on
    #: :class:`~repro.api.report.VerificationReport` (schema 5) and
    #: aggregated by ``/metrics``.
    counters: dict = field(default_factory=dict)
    partition: ConePartition | None = field(default=None, repr=False)


def incremental_verify(netlist: Netlist,
                       specification: Specification | str = "multiplier",
                       method: str = "mt-lr", *,
                       budgets: Budgets | None = None,
                       xor_and_only: bool = False,
                       find_counterexample: bool = True,
                       seed: int = 0,
                       cache: ConeCache | None = None,
                       model: AlgebraicModel | None = None,
                       partition: ConePartition | None = None,
                       max_cone_inputs: int | None = DEFAULT_MAX_CONE_INPUTS,
                       ) -> IncrementalOutcome:
    """Verify a netlist by per-cone reduction with optional proof reuse.

    Mirrors :func:`repro.verification.engine.verify` (same specification
    resolution, budgets, counterexample search, and
    :class:`~repro.errors.BlowUpError` behaviour) but reduces each output
    cone independently — replaying cones from ``cache`` when their
    canonical hash already has an entry — instead of reducing the whole
    circuit in one pass.  Only algebraic methods apply; certificates are
    not supported on this path (the certificate journal is a from-scratch
    reduction schedule).

    The verdict needs every cone, so a circuit with any cone wider than
    ``max_cone_inputs`` primary inputs is refused up front with
    :class:`ConeTooWideError` — before any reduction work — because the
    per-output normal form is exponential in the cone's inputs (see
    ``docs/incremental.md``).  Pass ``max_cone_inputs=None`` to attempt
    arbitrarily wide cones anyway.
    """
    from repro.verification.engine import (
        _find_counterexample,
        _resolve_specification,
    )

    if budgets is None:
        budgets = Budgets()
    start_total = time.perf_counter()
    deadline = (start_total + budgets.time_budget_s
                if budgets.time_budget_s is not None else None)

    if model is None:
        model = AlgebraicModel.from_netlist(netlist)
    spec = _resolve_specification(model, specification)
    if partition is None:
        partition = partition_cones(netlist)
    if max_cone_inputs is not None:
        for cone in partition.cones:
            if len(cone.inputs) > max_cone_inputs:
                raise ConeTooWideError(
                    f"cone {cone.output!r} spans {len(cone.inputs)} primary "
                    f"inputs (limit {max_cone_inputs}): its multilinear "
                    "normal form is exponential in the cone's inputs; "
                    "per-cone reduction refused", elapsed_s=0.0)

    replayed = reduced = 0
    aggregate = {"cancelled_vanishing_monomials": 0, "num_polynomials": 0,
                 "num_monomials": 0, "max_polynomial_terms": 0,
                 "max_monomial_variables": 0, "peak_monomials": 0,
                 "substitutions": 0}
    rewrite_time = 0.0
    start_reduce = time.perf_counter()
    replacements: dict[int, Polynomial] = {}
    for cone in partition.cones:
        key = (cache.key(cone.hash, method, budgets, xor_and_only)
               if cache is not None else None)
        entry = cache.get(key) if cache is not None else None
        if entry is None:
            terms, counters, cone_rewrite_s = _reduce_cone(
                cone, method, budgets, deadline, xor_and_only)
            rewrite_time += cone_rewrite_s
            reduced += 1
            if cache is not None:
                cache.put(key, cone.hash, method, terms, counters)
        else:
            terms = [(coeff, tuple(slots))
                     for coeff, slots in entry["remainder"]]
            counters = entry["counters"]
            replayed += 1
        for name in aggregate:
            value = int(counters.get(name, 0))
            if name.startswith("max_") or name == "peak_monomials":
                aggregate[name] = max(aggregate[name], value)
            else:
                aggregate[name] += value
        slot_to_var = {slot: model.ring.index(signal)
                       for slot, signal in cone.inputs}
        replacements[model.ring.index(cone.output)] = Polynomial.from_terms(
            (coeff, tuple(slot_to_var[slot] for slot in slots))
            for coeff, slots in terms)

    remainder = spec.polynomial.substitute_many(replacements)
    remainder = spec.apply_modulus(remainder)
    if spec.modulus is not None:
        # Canonical symmetric-range representatives: the composed integer
        # coefficients are congruent to the from-scratch remainder's mod
        # the spec modulus, but the raw representatives of both paths are
        # schedule-dependent — normalizing here makes the incremental
        # remainder a pure function of the circuit.
        remainder = remainder.reduce_coefficients(spec.modulus)
    reduction_time = time.perf_counter() - start_reduce

    verified = remainder.is_zero
    counterexample = None
    if not verified and find_counterexample:
        counterexample = _find_counterexample(model, remainder, spec.modulus,
                                              budgets.counterexample_tries,
                                              seed)

    stats = ModelStatistics(
        num_polynomials=aggregate["num_polynomials"],
        num_monomials=aggregate["num_monomials"],
        max_polynomial_terms=aggregate["max_polynomial_terms"],
        max_monomial_variables=aggregate["max_monomial_variables"])
    trace = ReductionTrace(substitutions=aggregate["substitutions"],
                           peak_monomials=aggregate["peak_monomials"])
    result = VerificationResult(
        verified=verified,
        method=method,
        circuit=netlist.name,
        specification=spec.description,
        remainder=remainder,
        remainder_text="" if verified else model.ring.render(remainder),
        counterexample=counterexample,
        cancelled_vanishing_monomials=aggregate[
            "cancelled_vanishing_monomials"],
        model_statistics=stats,
        reduction_trace=trace,
        rewrite_time_s=rewrite_time,
        reduction_time_s=reduction_time - rewrite_time,
        total_time_s=time.perf_counter() - start_total)
    counters = {
        "cones": len(partition.cones),
        "replayed_cones": replayed,
        "reduced_cones": reduced,
        "cache_hits": replayed if cache is not None else 0,
        "cache_misses": reduced if cache is not None else 0,
    }
    return IncrementalOutcome(result=result, counters=counters,
                              partition=partition)


def _reduce_cone(cone: Cone, method: str, budgets: Budgets,
                 deadline: float | None, xor_and_only: bool,
                 ) -> tuple[list[tuple[int, tuple[int, ...]]], dict, float]:
    """Reduce one cone to its ℤ normal form over canonical input slots.

    Returns ``(terms, counters, rewrite_seconds)`` where ``terms`` is a
    canonically sorted ``[(coeff, (slot, ...)), ...]`` list.  No
    coefficient modulus is applied — the exact integer normal form is what
    makes cached results composable under any specification modulus.
    Budget trips raise :class:`~repro.errors.BlowUpError` and are never
    cached.
    """
    from repro.verification.engine import _rewrite

    if len(cone.nodes) == 1 and cone.nodes[0][0] == "in":
        # The output is a primary input: its normal form is itself.
        return [(1, (0,))], _cone_counters(0, None, None), 0.0

    sub = cone_subnetlist(cone)
    sub_model = AlgebraicModel.from_netlist(sub)
    remaining = None
    if deadline is not None:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise BlowUpError("incremental reduction exceeded the time "
                              "budget before cone "
                              f"{cone.output!r}", elapsed_s=0.0)
    start_rewrite = time.perf_counter()
    rewritten, _ = _rewrite(sub_model, method, xor_and_only,
                            budgets.monomial_budget, deadline,
                            budgets.vanishing_cache_limit,
                            record_vanishing=False)
    rewrite_s = time.perf_counter() - start_rewrite
    options = ReductionOptions(monomial_budget=budgets.monomial_budget,
                               time_budget_s=(deadline - time.perf_counter()
                                              if deadline is not None
                                              else None),
                               coefficient_modulus=None)
    trace = ReductionTrace()
    root_var = sub_model.ring.index(f"c{cone.root}")
    poly = groebner_basis_reduction(Polynomial.variable(root_var), sub_model,
                                    rewritten.tails, options, trace)

    # Canonical sub-ring variables map 1:1 onto slot ids via their names.
    slot_of = {var: int(sub_model.ring.name(var)[1:])
               for var in sub_model.input_vars}
    terms = sorted(
        ((coeff, tuple(sorted(slot_of[var] for var in bits_of(mask))))
         for mask, coeff in poly.term_masks()),
        key=lambda term: term[1])
    counters = _cone_counters(rewritten.cancelled_vanishing_monomials,
                              rewritten.tails, trace)
    return terms, counters, rewrite_s


def _cone_counters(cancelled: int, tails, trace: ReductionTrace | None) -> dict:
    stats = (ModelStatistics.from_tails(tails) if tails is not None
             else ModelStatistics())
    return {
        "cancelled_vanishing_monomials": cancelled,
        "num_polynomials": stats.num_polynomials,
        "num_monomials": stats.num_monomials,
        "max_polynomial_terms": stats.max_polynomial_terms,
        "max_monomial_variables": stats.max_monomial_variables,
        "peak_monomials": trace.peak_monomials if trace is not None else 0,
        "substitutions": trace.substitutions if trace is not None else 0,
    }
