"""On-disk cache of per-cone Gröbner-basis reduction results.

The cone layer sits *under* the report-level
:class:`~repro.experiments.runner.ResultCache`: where that cache replays
whole verification reports keyed by netlist content, this one replays the
normal form of a single output cone keyed by the cone's canonical content
hash (:mod:`repro.incremental.cones`), the method, and the budgets that
produced it.  A mutated or ECO'd circuit therefore re-reduces only the
cones whose hash changed and replays every untouched cone — across
circuits, architectures, and operand widths, since the key never mentions
where the cone came from.

Entries store the remainder over canonical *input slots* (the cone's
primary-input ids), so a replayed polynomial is renamed into whatever ring
the consuming circuit uses.  Integrity follows the ResultCache contract:
entries carry a sha256 checksum, are published atomically per writer, and
corrupt files are quarantined (renamed ``*.json.quarantined``) and
re-reduced instead of poisoning the run.  Budget trips are never cached —
they are schedule-dependent, not a property of the cone.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.api.request import Budgets

#: Entry counter keys persisted alongside the remainder so replayed cones
#: reproduce the counters their original reduction reported.
_COUNTER_KEYS = ("cancelled_vanishing_monomials", "num_polynomials",
                 "num_monomials", "max_polynomial_terms",
                 "max_monomial_variables", "peak_monomials", "substitutions")


class ConeCache:
    """Content-addressed store of per-cone reduction remainders."""

    #: Bump when the entry schema or the reduction semantics change.
    SCHEMA = 1

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Lifetime counters of this instance (campaigns aggregate them).
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # -- keying ----------------------------------------------------------------

    def key(self, cone_hash: str, method: str, budgets: Budgets,
            xor_and_only: bool = False) -> str:
        """Cache key of one cone reduction.

        Only the budget fields that shape an algebraic reduction
        participate (monomial/time budgets and the vanishing-cache limit);
        width, output index, and circuit identity deliberately do not, so
        structurally identical cones share entries across architectures.
        """
        from repro import __version__
        payload = {
            "schema": self.SCHEMA,
            "version": __version__,
            "cone": cone_hash,
            "method": method,
            "monomial_budget": budgets.monomial_budget,
            "time_budget_s": budgets.time_budget_s,
            "vanishing_cache_limit": budgets.vanishing_cache_limit,
            "xor_and_only": xor_and_only,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    # -- storage ---------------------------------------------------------------

    def get(self, key: str | None) -> dict | None:
        """Return the cached entry for ``key``, or ``None`` on a miss.

        The entry is ``{"cone": hash, "method": str, "remainder":
        [[coeff, [slot, ...]], ...], "counters": {...}}``.  Corrupt files
        — unparseable JSON, a malformed document, a checksum mismatch, or
        a remainder that is not a well-formed term list — are quarantined
        and reported as a miss.
        """
        if key is None:
            return None
        path = self.directory / f"{key}.json"
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            document = json.loads(raw.decode("utf-8"))
            if document["schema"] != self.SCHEMA:
                raise ValueError("cone cache entry schema mismatch")
            entry = document["entry"]
            if document["sha256"] != self._checksum(entry):
                raise ValueError("cone cache entry checksum mismatch")
            self._validate(entry)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.quarantined += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str | None, cone_hash: str, method: str,
            remainder: list[tuple[int, tuple[int, ...]]],
            counters: dict | None = None) -> bool:
        """Publish one reduced cone; returns ``True`` iff it was written."""
        if key is None:
            return False
        entry = {
            "cone": cone_hash,
            "method": method,
            "remainder": [[coeff, list(slots)] for coeff, slots in remainder],
            "counters": {name: int((counters or {}).get(name, 0))
                         for name in _COUNTER_KEYS},
        }
        document = {"schema": self.SCHEMA, "entry": entry,
                    "sha256": self._checksum(entry)}
        path = self.directory / f"{key}.json"
        # Atomic publish, per-writer temporary — campaigns run many
        # processes and threads against one directory.
        temporary = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            temporary.write_text(
                json.dumps(document, separators=(",", ":")) + "\n",
                encoding="utf-8")
            temporary.replace(path)
        except OSError:
            temporary.unlink(missing_ok=True)
            return False
        return True

    # -- integrity -------------------------------------------------------------

    @staticmethod
    def _checksum(entry: dict) -> str:
        return hashlib.sha256(
            json.dumps(entry, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")).hexdigest()

    @staticmethod
    def _validate(entry: dict) -> None:
        """Raise unless the entry's remainder is a well-formed term list."""
        if not isinstance(entry["cone"], str) \
                or not isinstance(entry["method"], str):
            raise ValueError("malformed cone cache entry")
        for term in entry["remainder"]:
            coeff, slots = term
            if not isinstance(coeff, int) or isinstance(coeff, bool):
                raise ValueError("malformed cone remainder coefficient")
            if not all(isinstance(slot, int) and not isinstance(slot, bool)
                       and slot >= 0 for slot in slots):
                raise ValueError("malformed cone remainder monomial")

    @staticmethod
    def _quarantine(path: Path) -> None:
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            pass  # a concurrent reader already moved (or removed) it

    def stats(self) -> dict:
        """Hit/miss/quarantine counters of this instance."""
        return {"hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined}
