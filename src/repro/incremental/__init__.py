"""Incremental verification: per-cone proof reuse and mutation campaigns.

The package splits a netlist into per-output reduction cones with
content-derived canonical hashes (:mod:`~repro.incremental.cones`), caches
each cone's integer normal form keyed by that hash
(:mod:`~repro.incremental.cache`), composes cached and freshly reduced
cones under the word-level specification
(:mod:`~repro.incremental.verify`), and drives fault-injection sweeps that
exercise the reuse path at scale (:mod:`~repro.incremental.campaign`).
See ``docs/incremental.md`` for the exactness argument and the hash
contract.
"""

from repro.incremental.cache import ConeCache
from repro.incremental.campaign import (
    CampaignTask,
    enumerate_tasks,
    run_campaign,
)
from repro.incremental.cones import (
    Cone,
    ConePartition,
    cone_hash,
    cone_subnetlist,
    extract_cone,
    partition_cones,
)
from repro.incremental.verify import (
    DEFAULT_MAX_CONE_INPUTS,
    ConeTooWideError,
    IncrementalOutcome,
    incremental_verify,
)

__all__ = [
    "CampaignTask",
    "Cone",
    "ConeCache",
    "ConePartition",
    "ConeTooWideError",
    "DEFAULT_MAX_CONE_INPUTS",
    "IncrementalOutcome",
    "cone_hash",
    "cone_subnetlist",
    "enumerate_tasks",
    "extract_cone",
    "incremental_verify",
    "partition_cones",
    "run_campaign",
]
