"""Per-output reduction cones with canonical content hashes.

The incremental verifier splits a netlist along its primary outputs: the
*cone* of an output is its transitive fanin
(:func:`repro.circuit.analysis.output_cones`), the sub-circuit whose
Gröbner-basis reduction produces that output bit's normal form over the
primary inputs.  Cones of different outputs overlap wherever logic is
shared; for bookkeeping that must cover every gate exactly once (campaign
accounting, dead-logic detection) each gate is additionally *owned* by the
first output — in ``netlist.outputs`` order — whose cone contains it.

Every cone carries a canonical content hash: the cone is renamed
topologically (post-order DFS from the output, following each gate's input
tuple), so the hash is a pure function of the cone's *structure* — invariant
under signal renaming and gate declaration order, and distinct for any
single-gate functional edit inside the cone.  Two circuits that share a
cone hash share the cone's reduction result, which is what the
:class:`repro.incremental.cache.ConeCache` keys on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.circuit.analysis import output_cones
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist

#: Canonical-node tag for primary inputs (gate nodes use the GateType value).
_INPUT_TAG = "in"


@dataclass(frozen=True)
class Cone:
    """One output's reduction cone, in canonical (structure-only) form.

    ``nodes`` is the canonical document the hash is computed over: node
    ``i`` is either ``("in",)`` for a primary input or
    ``(gate_type_value, (child_ids...))`` for a gate, with ids assigned in
    post-order DFS completion order — every child id is smaller than its
    parent's, and the cone's output is always the last node.
    """

    #: Primary-output signal (original netlist name) this cone reduces.
    output: str
    #: Canonical content hash (sha256 hex over ``nodes``).
    hash: str
    #: Canonical node list; index = canonical id.
    nodes: tuple[tuple, ...]
    #: ``(canonical id, original signal name)`` of every primary input.
    inputs: tuple[tuple[int, str], ...]
    #: Gate-output signals inside the cone (original names; overlapping).
    gates: frozenset[str]
    #: Gates owned by this cone under first-output ownership (exact-once).
    owned: tuple[str, ...]

    @property
    def root(self) -> int:
        """Canonical id of the cone output (always the last node)."""
        return len(self.nodes) - 1

    @property
    def num_gates(self) -> int:
        """Number of gates in the (overlapping) support cone."""
        return len(self.gates)


@dataclass(frozen=True)
class ConePartition:
    """All cones of a netlist plus the gates no output depends on."""

    cones: tuple[Cone, ...]
    #: Gate outputs outside every output cone (insertion order).
    dead_gates: tuple[str, ...]

    def by_output(self) -> dict[str, Cone]:
        """Cones keyed by their output signal."""
        return {cone.output: cone for cone in self.cones}

    def changed_cones(self, other: "ConePartition") -> list[str]:
        """Outputs whose cone hash differs between two partitions.

        Outputs present in only one partition count as changed.
        """
        mine = {cone.output: cone.hash for cone in self.cones}
        theirs = {cone.output: cone.hash for cone in other.cones}
        return sorted(output for output in mine.keys() | theirs.keys()
                      if mine.get(output) != theirs.get(output))


def _canonical_nodes(netlist: Netlist, output: str,
                     ) -> tuple[tuple[tuple, ...], tuple[tuple[int, str], ...]]:
    """Canonically renamed cone of ``output``: (nodes, input slots).

    Iterative post-order DFS from the output following each gate's ordered
    input tuple; a node's id is assigned when all its children are done, so
    ids are topological and depend only on the cone's structure — never on
    signal names or the netlist's gate declaration order.
    """
    ids: dict[str, int] = {}
    nodes: list[tuple] = []
    inputs: list[tuple[int, str]] = []
    stack: list[tuple[str, bool]] = [(output, False)]
    while stack:
        signal, expanded = stack.pop()
        if signal in ids:
            continue
        if netlist.is_input(signal):
            ids[signal] = len(nodes)
            inputs.append((len(nodes), signal))
            nodes.append((_INPUT_TAG,))
            continue
        gate = netlist.gate_of(signal)
        if expanded:
            ids[signal] = len(nodes)
            nodes.append((gate.gate_type.value,
                          tuple(ids[child] for child in gate.inputs)))
        else:
            stack.append((signal, True))
            for child in reversed(gate.inputs):
                if child not in ids:
                    stack.append((child, False))
    return tuple(nodes), tuple(inputs)


def cone_hash(nodes: tuple[tuple, ...]) -> str:
    """sha256 over the canonical node document (compact JSON)."""
    payload = json.dumps(
        [[node[0]] if len(node) == 1 else [node[0], list(node[1])]
         for node in nodes],
        separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def extract_cone(netlist: Netlist, output: str,
                 owned: tuple[str, ...] = (),
                 support: set[str] | None = None) -> Cone:
    """Build the :class:`Cone` of one primary output."""
    nodes, inputs = _canonical_nodes(netlist, output)
    if support is None:
        from repro.circuit.analysis import transitive_fanin
        support = transitive_fanin(netlist, [output])
    gates = frozenset(signal for signal in support
                      if not netlist.is_input(signal))
    return Cone(output=output, hash=cone_hash(nodes), nodes=nodes,
                inputs=inputs, gates=gates, owned=tuple(owned))


def partition_cones(netlist: Netlist) -> ConePartition:
    """Split a netlist into per-output cones with exact-once gate ownership.

    Cones appear in ``netlist.outputs`` order.  A gate is owned by the
    first output whose cone contains it; gates in no cone (dead logic) are
    reported separately, so ``owned`` sets plus ``dead_gates`` cover every
    gate exactly once.
    """
    fanins = output_cones(netlist)
    claimed: set[str] = set()
    cones: list[Cone] = []
    for output in netlist.outputs:
        support = fanins[output]
        owned = tuple(gate.output for gate in netlist.gates()
                      if gate.output in support and gate.output not in claimed)
        claimed.update(owned)
        cones.append(extract_cone(netlist, output, owned=owned,
                                  support=support))
    dead = tuple(gate.output for gate in netlist.gates()
                 if gate.output not in claimed)
    return ConePartition(cones=tuple(cones), dead_gates=dead)


def cone_subnetlist(cone: Cone) -> Netlist:
    """Materialize a cone as a standalone netlist under canonical names.

    Signal ``c<i>`` is canonical node ``i``; nodes are instantiated in
    ascending id order (topological by construction), the single output is
    the root.  The result — and therefore its algebraic model, whose
    variable numbering is deterministic — is a pure function of the
    canonical document, which is what makes cached per-cone reductions
    replayable across differently-named circuits.
    """
    sub = Netlist(f"cone_{cone.hash[:12]}")
    for index, node in enumerate(cone.nodes):
        if node[0] == _INPUT_TAG:
            sub.add_input(f"c{index}")
        else:
            sub.add_gate(GateType(node[0]),
                         tuple(f"c{child}" for child in node[1]),
                         output=f"c{index}")
    sub.add_output(f"c{cone.root}")
    return sub
