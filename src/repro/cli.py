"""Command-line interface.

Examples
--------

Generate and verify a multiplier::

    repro-verify verify --architecture BP-WT-CL --width 8 --method mt-lr

Verify a gate-level Verilog netlist::

    repro-verify verify-verilog mult.v --spec multiplier

Emit a proof certificate and re-check it independently of the engine::

    repro-verify verify -a SP-AR-RC -w 4 --certificate proof.json
    repro-verify check-certificate proof.json

Export a generated multiplier as Verilog::

    repro-verify generate --architecture SP-CT-BK --width 16 --output mult.v

Print one of the paper's tables (optionally across 4 worker processes)::

    repro-verify table table1 --jobs 4

Verify a whole architecture catalog in parallel::

    repro-verify batch --width 4 --methods mt-lr,mt-fo --jobs 4

Serve verification over HTTP (endpoints in ``docs/http-api.md``)::

    repro-verify serve --port 8585 --jobs 4 --cache .bench-cache

Sweep every single-gate mutant of an architecture with per-cone proof
reuse, cross-checking a sample against from-scratch runs
(``docs/incremental.md``)::

    repro-verify campaign -a SP-AR-RC -w 4 --cone-cache .cone-cache \
        --cross-check 25 --out campaign.jsonl

Exit codes (driven by the report verdict, uniform across ``verify``,
``verify-verilog`` and ``batch``):

* ``0`` — verified (or nothing applicable to check),
* ``1`` — usage or infrastructure error,
* ``2`` — refuted (a mismatch was proven),
* ``3`` — a budget/timeout tripped before a verdict (``batch`` also uses
  3 when any row crashed or errored without a refutation).

``check-certificate`` maps the checker verdict the same way — 0 when the
certificate proves ``verified``, 2 when it proves ``refuted``, 1 when it
is malformed or fails to check — without importing the engine, so its
exit code is independent of the machinery that emitted the proof.

``--json`` makes ``verify``/``verify-verilog`` emit one
:class:`~repro.api.report.VerificationReport` JSON object and ``batch``
one JSON line per row — the same schema the Python API returns (see
``repro/api/__init__.py``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api.registry import backend_names, has_backend
from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.circuit.verilog import save_verilog
from repro.errors import BlowUpError, ReproError
from repro.experiments.runner import (
    ExperimentConfig,
    JOB_METHODS,
    ParallelRunner,
)
from repro.experiments.tables import main as tables_main
from repro.generators.adders import generate_adder
from repro.generators.catalog import (
    TABLE1_ARCHITECTURES,
    TABLE2_ARCHITECTURES,
    architecture_names,
)
from repro.generators.multipliers import generate_multiplier
from repro.resilience.policy import FallbackPolicy, RetryPolicy


def _add_fallback_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fallback", default="none", metavar="SPEC",
                        help="graceful degradation when a budget trips: "
                             "'none' (default), 'default' (registry chains: "
                             "escalate budgets x4, then the backend's "
                             "degrades-to baseline, e.g. sat-cec), or an "
                             "explicit chain like 'escalate:8,sat-cec'")


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", default="mt-lr",
                        choices=list(backend_names()),
                        help="verification backend (default: mt-lr)")
    parser.add_argument("--monomial-budget", type=int, default=2_000_000,
                        help="abort when the remainder exceeds this many monomials")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="abort after this many seconds")
    parser.add_argument("--stats", action="store_true",
                        help="print the substitution-engine counters of the "
                             "rewriting passes and the GB reduction")
    parser.add_argument("--vanishing-cache-limit", type=int, default=None,
                        help="cap on the vanishing-rule verdict cache "
                             "(whole-cache reset on overflow)")
    parser.add_argument("--json", action="store_true",
                        help="emit the verification report as one JSON "
                             "object (schema in repro/api/__init__.py)")
    parser.add_argument("--certificate", default=None, metavar="PATH",
                        help="emit a checkable proof certificate to PATH "
                             "(algebraic backends only; re-check it with "
                             "'repro-verify check-certificate PATH')")
    parser.add_argument("--incremental", action="store_true",
                        help="verify per output cone with proof reuse "
                             "(docs/incremental.md; algebraic backends only, "
                             "incompatible with --certificate)")
    parser.add_argument("--cone-cache", dest="cone_cache", default=None,
                        metavar="DIR",
                        help="on-disk cone cache directory for --incremental "
                             "runs; unchanged cones replay instead of "
                             "re-reducing")


def _budgets_from_args(args: argparse.Namespace) -> Budgets:
    return Budgets(monomial_budget=args.monomial_budget,
                   time_budget_s=args.time_budget,
                   vanishing_cache_limit=args.vanishing_cache_limit)


def _print_engine_stats(result) -> None:
    """Per-pass counters reported by the shared substitution engine."""
    for stats in result.rewrite_statistics:
        print(f"rewrite[{stats.scheme}]: steps={stats.substitution_steps} "
              f"affected-terms={stats.affected_terms} "
              f"rejected={stats.rejected_substitutions} "
              f"cvm={stats.cancelled_vanishing_monomials} "
              f"peak-tail={stats.peak_tail_terms} "
              f"kept={stats.kept_variables} "
              f"substituted={stats.substituted_variables} "
              f"batches={stats.batches} "
              f"batched-steps={stats.batched_steps} "
              f"time={stats.elapsed_s:.3f}s")
        if stats.vanishing_cache_hits or stats.vanishing_cache_misses:
            print(f"  vanishing-cache[{stats.scheme}]: "
                  f"hits={stats.vanishing_cache_hits} "
                  f"misses={stats.vanishing_cache_misses} "
                  f"size={stats.vanishing_cache_size} "
                  f"resets={stats.vanishing_cache_resets} "
                  f"witness-hits={stats.vanishing_witness_hits}")
    trace = result.reduction_trace
    print(f"reduction: substitutions={trace.substitutions} "
          f"affected-terms={trace.affected_terms} "
          f"modulus-removed={trace.modulus_removed_terms} "
          f"peak-remainder={trace.peak_monomials} "
          f"batches={trace.batches} "
          f"batched-steps={trace.batched_steps} "
          f"time={trace.elapsed_s:.3f}s")


def _print_counterexample(counterexample: dict[str, int]) -> None:
    assignment = ", ".join(f"{k}={v}" for k, v in
                           sorted(counterexample.items()))
    print("counterexample:", assignment)


def _report(result, show_stats: bool = False) -> int:
    print(result.summary())
    if show_stats:
        _print_engine_stats(result)
    if not result.verified:
        print("remainder:", result.remainder_text or "(non-zero)")
        if result.counterexample:
            _print_counterexample(result.counterexample)
        return 2
    stats = result.model_statistics
    print(f"model: #P={stats.num_polynomials} #M={stats.num_monomials} "
          f"#MP={stats.max_polynomial_terms} #VM={stats.max_monomial_variables}")
    return 0


def _run_request(request: VerificationRequest, args: argparse.Namespace) -> int:
    """Submit one request to the service and render its report."""
    fallback = FallbackPolicy.parse(getattr(args, "fallback", "none"))
    service = VerificationService(
        fallback_policy=fallback,
        cone_cache_dir=getattr(args, "cone_cache", None))
    report = service.submit(request)
    if report.incremental is not None:
        counters = report.incremental
        print(f"incremental: cones={counters['cones']} "
              f"replayed={counters['replayed_cones']} "
              f"reduced={counters['reduced_cones']}", file=sys.stderr)
    if report.attempts and len(report.attempts) > 1:
        trail = " -> ".join(f"{entry['method']}[{entry['kind']}]="
                            f"{entry['outcome']}"
                            for entry in report.attempts)
        print(f"fallback: {trail}", file=sys.stderr)
    if args.certificate and report.certificate is not None:
        from repro.certify import write_certificate
        write_certificate(report.certificate, args.certificate)
        print(f"certificate: wrote {report.certificate['sha256']} "
              f"to {args.certificate}", file=sys.stderr)
    if args.json:
        print(report.to_json())
        return report.exit_code
    if report.verdict == "budget":
        reason = report.reason or "budget exhausted before a verdict"
        print(f"TIMEOUT/BLOW-UP: {reason}", file=sys.stderr)
        return report.exit_code
    if report.result is not None and hasattr(report.result, "summary"):
        # Algebraic backends: the rich engine output (+ --stats counters).
        _report(report.result, show_stats=args.stats)
        return report.exit_code
    # SAT/BDD baselines: the uniform report summary.
    print(report.summary())
    if report.verdict == "refuted" and report.counterexample:
        _print_counterexample(report.counterexample)
    return report.exit_code


def _cmd_verify(args: argparse.Namespace) -> int:
    request = VerificationRequest.from_architecture(
        args.architecture, args.width, method=args.method,
        circuit_kind="adder" if args.adder else "multiplier",
        budgets=_budgets_from_args(args),
        certificate=bool(args.certificate),
        incremental=args.incremental)
    return _run_request(request, args)


def _cmd_verify_verilog(args: argparse.Namespace) -> int:
    request = VerificationRequest.from_verilog(
        path=args.netlist, method=args.method, specification=args.spec,
        budgets=_budgets_from_args(args),
        certificate=bool(args.certificate),
        incremental=args.incremental)
    return _run_request(request, args)


def _cmd_check_certificate(args: argparse.Namespace) -> int:
    """Re-check a proof certificate without touching the engine.

    Imports only :mod:`repro.certify.checker` (which itself depends only
    on the algebra primitives), so the exit code is an independent
    judgement: 0 = the certificate proves ``verified``, 2 = it proves
    ``refuted``, 1 = it is malformed or fails to check.
    """
    from repro.certify import load_certificate
    from repro.certify.checker import check_certificate
    from repro.errors import CertificateError
    failures = 0
    saw_refuted = False
    for path in args.certificate:
        try:
            summary = check_certificate(load_certificate(path))
        except CertificateError as error:
            step = "" if error.step is None else f" step {error.step}"
            print(f"{path}: INVALID [{error.stage}{step}] {error}",
                  file=sys.stderr)
            failures += 1
            continue
        print(f"{path}: valid {summary['verdict']} "
              f"({summary['method']}, {summary['circuit']}, "
              f"steps={summary['steps']}, "
              f"vanishing={summary['vanishing_rules']}, "
              f"model-check={summary['model_check']}, "
              f"sha256={summary['sha256'][:16]}...)")
        if summary["verdict"] == "refuted":
            # A checked refutation is a real verdict, not a failure of the
            # certificate — surface it through the uniform exit codes.
            saw_refuted = True
    if failures:
        return 1
    return 2 if saw_refuted else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.adder:
        netlist = generate_adder(args.architecture, args.width)
    else:
        netlist = generate_multiplier(args.architecture, args.width)
    if args.output:
        save_verilog(netlist, args.output)
        print(f"wrote {netlist.num_gates} gates to {args.output}")
    else:
        from repro.circuit.verilog import write_verilog
        sys.stdout.write(write_verilog(netlist))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    argv = [args.name]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    return tables_main(argv)


def _resolve_batch_architectures(spec: str) -> list[str]:
    if spec == "table1":
        return list(TABLE1_ARCHITECTURES)
    if spec == "table2":
        return list(TABLE2_ARCHITECTURES)
    if spec == "all":
        return architecture_names()
    return [name.strip() for name in spec.split(",") if name.strip()]


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP verification server until interrupted."""
    from repro.server import serve

    fleet_topology = None
    if args.fleet:
        from repro.fleet import FleetTopology

        fleet_topology = FleetTopology.from_file(args.fleet)

    def announce(server) -> None:
        print(f"repro-verify serve: listening on "
              f"http://{server.host}:{server.port} "
              f"(jobs={args.jobs}, cache={args.cache or '-'})",
              file=sys.stderr, flush=True)

    serve(host=args.host, port=args.port, announce=announce,
          budgets=Budgets(monomial_budget=args.monomial_budget,
                          time_budget_s=args.time_budget,
                          task_timeout_s=args.task_timeout),
          jobs=args.jobs, cache_dir=args.cache,
          job_store_limit=args.job_store_limit,
          max_inflight=args.max_inflight,
          request_deadline_s=args.request_deadline,
          retry_policy=(RetryPolicy(max_attempts=args.retries + 1)
                        if args.retries else None),
          fallback_policy=FallbackPolicy.parse(args.fallback),
          shared_cache_url=args.shared_cache,
          fleet_topology=fleet_topology,
          cone_cache_dir=args.cone_cache)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Run a mutation campaign (see ``docs/incremental.md``)."""
    from repro.incremental import run_campaign

    architectures = [name.strip() for name in args.architectures.split(",")
                     if name.strip()]

    def on_row(row: dict) -> None:
        print(f"{row['id']}: {row['verdict']}", file=sys.stderr, flush=True)

    summary = run_campaign(
        architectures, args.width, args.method,
        budgets=Budgets(monomial_budget=args.monomial_budget,
                        time_budget_s=args.time_budget),
        cone_cache_dir=args.cone_cache,
        out_path=args.out,
        resume=args.resume,
        sample=args.sample,
        seed=args.seed,
        cross_check=args.cross_check,
        limit=args.limit,
        jobs=args.jobs,
        on_row=on_row)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if summary["cross_check_disagreements"] else 0


def _run_fleet_batch(args: argparse.Namespace, architectures, methods,
                     config) -> int:
    """``batch --fleet``: scatter the grid over remote serve workers.

    The stdout verdict lines and summary are byte-identical to the
    serial (fleet-less) run — fleet counters go to stderr — so a grid
    can be moved onto a fleet without touching anything that parses the
    output.  Reports stream in as workers answer; rows print in grid
    order as soon as each resolves.
    """
    import dataclasses as _dataclasses

    from repro.fleet import FleetDispatcher, FleetTopology

    topology = FleetTopology.from_file(args.fleet)
    if args.cache:
        topology = _dataclasses.replace(topology, cache_dir=args.cache)
    budgets = Budgets.from_config(config, task_timeout_s=args.task_timeout)
    grid = ParallelRunner.catalog(architectures, config.widths, methods)
    requests = [VerificationRequest.from_architecture(
        job.architecture, job.width, job.method, budgets=budgets,
        find_counterexample=False) for job in grid]
    dispatcher = FleetDispatcher(
        topology, golden_architecture=config.golden_architecture)
    reports: list[VerificationReport] = []
    rows = []
    counts: dict[str, int] = {}
    for report in dispatcher.iter_batch(requests):
        reports.append(report)
        row = report.to_row()
        rows.append(row)
        if args.json:
            print(report.to_json(), flush=True)
        else:
            verdict = ("pass" if row["verified"] else
                       "FAIL" if row["verified"] is False else
                       row["status"])
            counts[verdict] = counts.get(verdict, 0) + 1
            print(f"{row['architecture']:<12} {row['width']:>3} "
                  f"{row['method']:<8} {verdict}", flush=True)
    if not args.json:
        print("summary: " + " ".join(f"{verdict}={count}" for verdict, count
                                     in sorted(counts.items())))
    print(f"fleet: workers={len(topology.workers)} "
          f"cache-hits={dispatcher.last_cache_hits} "
          f"executed={dispatcher.last_executed} "
          f"retries={dispatcher.last_retries} "
          f"steals={dispatcher.last_steals}", file=sys.stderr, flush=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, default=str)
        print(f"wrote {len(rows)} rows to {args.output}", file=sys.stderr)
    if any(report.verdict == "refuted" for report in reports):
        return 2
    if any(report.verdict in ("budget", "error") for report in reports):
        return 3
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a catalog of verification jobs, optionally across processes.

    The stdout verdict lines are deterministic (ordered by the job grid and
    free of timing data), so the output is byte-identical for any ``--jobs``
    value; timings go to the optional ``--output`` JSON file.
    """
    architectures = _resolve_batch_architectures(args.architectures)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for method in methods:
        if not has_backend(method):
            print(f"error: unknown method {method!r}; expected one of "
                  f"{', '.join(JOB_METHODS)}", file=sys.stderr)
            return 1
    config = ExperimentConfig.from_environment()
    config.widths = tuple(args.width)
    if args.monomial_budget is not None:
        config.monomial_budget = args.monomial_budget
    if args.time_budget is not None:
        config.time_budget_s = args.time_budget
    if args.fleet:
        return _run_fleet_batch(args, architectures, methods, config)
    retry_policy = (RetryPolicy(max_attempts=args.retries + 1)
                    if args.retries else None)
    runner = ParallelRunner(config, workers=args.jobs,
                            task_timeout_s=args.task_timeout,
                            cache_dir=args.cache,
                            retry_policy=retry_policy)
    grid = ParallelRunner.catalog(architectures, config.widths, methods)
    rows = runner.run(grid)
    reports = [VerificationReport.from_row(row) for row in rows]

    fallback = FallbackPolicy.parse(args.fallback)
    fallbacks = 0
    if fallback is not None:
        # Degrade budget rows in-process through the backend chains; the
        # cache keeps the original backend's own row, the batch output
        # carries the degraded verdict (and its attempts history).
        service = VerificationService(budgets=Budgets.from_config(config),
                                      fallback_policy=fallback)
        for index, report in enumerate(reports):
            if report.verdict != "budget":
                continue
            row = rows[index]
            request = VerificationRequest.from_architecture(
                row["architecture"], row["width"], method=row["method"],
                budgets=Budgets.from_config(config),
                find_counterexample=False)
            reports[index] = service.apply_fallback(request, report)
            rows[index] = reports[index].to_row()
        fallbacks = service.last_fallbacks

    if args.json:
        # One report JSON line per row — the same schema as the Python API
        # and `verify --json`; summary/cache footers are human output only.
        for report in reports:
            print(report.to_json())
    else:
        counts: dict[str, int] = {}
        for row in rows:
            verdict = ("pass" if row["verified"] else
                       "FAIL" if row["verified"] is False else
                       row["status"])
            counts[verdict] = counts.get(verdict, 0) + 1
            print(f"{row['architecture']:<12} {row['width']:>3} "
                  f"{row['method']:<8} {verdict}")
        print("summary: " + " ".join(f"{verdict}={count}" for verdict, count
                                     in sorted(counts.items())))
        if runner.cache is not None:
            # Cache-aware footer: deterministic for a given cache directory,
            # so the output stays byte-identical across --jobs values.
            print(f"cache: hits={runner.last_cache_hits} "
                  f"executed={runner.last_executed}")
        if retry_policy is not None or fallback is not None:
            # Only printed when resilience flags are on, so default batch
            # output stays byte-identical to earlier releases.
            print(f"resilience: retries={runner.last_retries} "
                  f"fallbacks={fallbacks}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, default=str)
        print(f"wrote {len(rows)} rows to {args.output}", file=sys.stderr)
    # Exit-code mapping (see module docstring): refutations dominate, then
    # budget trips / infrastructure failures, then success.
    if any(report.verdict == "refuted" for report in reports):
        return 2
    if any(report.verdict in ("budget", "error") for report in reports):
        return 3
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Formal verification of integer multipliers by combining "
                    "Gröbner basis with logic reduction (DATE 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="generate and verify an architecture")
    p_verify.add_argument("--architecture", "-a", default="SP-AR-RC",
                          help="architecture name, e.g. BP-WT-CL, or adder kind with --adder")
    p_verify.add_argument("--width", "-w", type=int, default=8,
                          help="operand width in bits")
    p_verify.add_argument("--adder", action="store_true",
                          help="verify a standalone adder instead of a multiplier")
    _add_budget_arguments(p_verify)
    _add_fallback_argument(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_vv = sub.add_parser("verify-verilog",
                          help="verify a gate-level Verilog netlist")
    p_vv.add_argument("netlist", help="path to the Verilog file")
    p_vv.add_argument("--spec", default="multiplier",
                      choices=["multiplier", "adder"])
    _add_budget_arguments(p_vv)
    _add_fallback_argument(p_vv)
    p_vv.set_defaults(func=_cmd_verify_verilog)

    p_check = sub.add_parser(
        "check-certificate",
        help="independently re-check proof certificates (engine-free)")
    p_check.add_argument("certificate", nargs="+", metavar="PATH",
                         help="certificate JSON file(s) written by "
                              "'verify --certificate'")
    p_check.set_defaults(func=_cmd_check_certificate)

    p_gen = sub.add_parser("generate", help="generate a circuit and export Verilog")
    p_gen.add_argument("--architecture", "-a", default="SP-AR-RC")
    p_gen.add_argument("--width", "-w", type=int, default=8)
    p_gen.add_argument("--adder", action="store_true")
    p_gen.add_argument("--output", "-o", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    p_table = sub.add_parser("table", help="print one of the paper's tables")
    p_table.add_argument("name", choices=["table1", "table2", "table3",
                                          "adders", "ablation"])
    p_table.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes for the table's runs")
    p_table.set_defaults(func=_cmd_table)

    p_batch = sub.add_parser(
        "batch", help="run a catalog of verifications, optionally in parallel")
    p_batch.add_argument("--architectures", "-a", default="all",
                         help="'table1', 'table2', 'all' or a comma-separated "
                              "list of architecture names (default: all)")
    p_batch.add_argument("--width", "-w", type=int, nargs="+", default=[4],
                         help="operand widths in bits (default: 4)")
    p_batch.add_argument("--methods", "-m", default="mt-lr",
                         help="comma-separated methods "
                              f"({', '.join(JOB_METHODS)})")
    p_batch.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes (default: 1 = serial)")
    p_batch.add_argument("--task-timeout", type=float, default=None,
                         help="hard per-job wall-clock limit in seconds "
                              "(enforced by killing the worker)")
    p_batch.add_argument("--cache", default=None, metavar="DIR",
                         help="on-disk result cache directory (also "
                              "REPRO_BENCH_CACHE); re-runs only execute "
                              "changed or uncached jobs")
    p_batch.add_argument("--output", "-o", default=None,
                         help="write full result rows (with timings) to this "
                              "JSON file")
    p_batch.add_argument("--monomial-budget", type=int, default=None,
                         help="override the REPRO_BENCH_MONOMIAL_BUDGET / "
                              "default budget for this batch")
    p_batch.add_argument("--time-budget", type=float, default=None)
    p_batch.add_argument("--json", action="store_true",
                         help="emit one verification-report JSON line per "
                              "row instead of the verdict table")
    p_batch.add_argument("--retries", type=int, default=0, metavar="N",
                         help="retry crashed / hard-timed-out jobs up to N "
                              "times on fresh workers with exponential "
                              "backoff (default: 0 = no retries)")
    p_batch.add_argument("--fleet", default=None, metavar="CONFIG",
                         help="fleet topology JSON file: scatter the grid "
                              "over remote repro-verify serve workers "
                              "instead of local processes (docs/fleet.md); "
                              "--cache becomes the coordinator-side shared "
                              "result cache")
    _add_fallback_argument(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="serve verification over HTTP (see docs/http-api.md)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", "-p", type=int, default=8585,
                         help="TCP port; 0 binds an ephemeral port "
                              "(default: 8585)")
    p_serve.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes per batch (default: 1)")
    p_serve.add_argument("--cache", default=None, metavar="DIR",
                         help="on-disk result cache directory shared by "
                              "every batch (also REPRO_BENCH_CACHE)")
    p_serve.add_argument("--job-store-limit", type=int, default=256,
                         help="bound on the async job store; finished jobs "
                              "are evicted oldest-first (default: 256)")
    p_serve.add_argument("--monomial-budget", type=int, default=2_000_000,
                         help="default monomial budget of served requests")
    p_serve.add_argument("--time-budget", type=float, default=None,
                         help="default per-request time budget in seconds")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         help="default hard per-job wall-clock limit of "
                              "served batches")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         help="bound on concurrently executing verification "
                              "requests; excess POSTs are answered 429 with "
                              "a Retry-After header (default: unbounded)")
    p_serve.add_argument("--request-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-request wall-clock deadline; requests "
                              "asking for more get their time budgets "
                              "clamped and answer verdict 'budget' "
                              "(default: none)")
    p_serve.add_argument("--retries", type=int, default=0, metavar="N",
                         help="retry crashed / hard-timed-out batch jobs up "
                              "to N times (default: 0)")
    p_serve.add_argument("--fleet", default=None, metavar="CONFIG",
                         help="fleet topology JSON file: this server "
                              "becomes a coordinator scattering /v1/batch "
                              "over the named workers (docs/fleet.md)")
    p_serve.add_argument("--shared-cache", dest="shared_cache", default=None,
                         metavar="URL",
                         help="coordinator URL whose /v1/cache/{key} this "
                              "worker checks before executing and populates "
                              "after (docs/fleet.md)")
    p_serve.add_argument("--cone-cache", dest="cone_cache", default=None,
                         metavar="DIR",
                         help="on-disk cone cache directory used by "
                              "'incremental: true' requests "
                              "(docs/incremental.md)")
    _add_fallback_argument(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_campaign = sub.add_parser(
        "campaign",
        help="mutation campaign: verify every single-gate mutant of an "
             "architecture grid with per-cone proof reuse")
    p_campaign.add_argument("--architectures", "-a", default="SP-AR-RC",
                            help="comma-separated architecture names "
                                 "(default: SP-AR-RC)")
    p_campaign.add_argument("--width", "-w", type=int, nargs="+", default=[4],
                            help="operand widths in bits (default: 4)")
    p_campaign.add_argument("--method", default="mt-lr",
                            choices=list(backend_names()),
                            help="verification backend (default: mt-lr; "
                                 "algebraic methods only)")
    p_campaign.add_argument("--out", "-o", default=None, metavar="PATH",
                            help="append one JSON row per mutant to this "
                                 "JSONL file")
    p_campaign.add_argument("--resume", action="store_true",
                            help="skip mutants whose row id already appears "
                                 "in --out (interrupted-campaign restart)")
    p_campaign.add_argument("--sample", type=int, default=None, metavar="N",
                            help="seeded cap on mutants per architecture×"
                                 "width cell (default: all mutants)")
    p_campaign.add_argument("--seed", type=int, default=0,
                            help="seed of the mutant sample and the "
                                 "cross-check subset (default: 0)")
    p_campaign.add_argument("--cross-check", dest="cross_check", type=int,
                            default=0, metavar="N",
                            help="re-verify N seeded mutants from scratch "
                                 "and fail (exit 1) on any verdict "
                                 "disagreement")
    p_campaign.add_argument("--cone-cache", dest="cone_cache", default=None,
                            metavar="DIR",
                            help="shared cone cache directory; unchanged "
                                 "cones replay across mutants and runs")
    p_campaign.add_argument("--limit", type=int, default=None,
                            help="hard cap on executed tasks (smoke runs)")
    p_campaign.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes (default: 1 = serial)")
    p_campaign.add_argument("--monomial-budget", type=int, default=2_000_000)
    p_campaign.add_argument("--time-budget", type=float, default=None)
    p_campaign.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BlowUpError as error:
        print(f"TIMEOUT/BLOW-UP: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
