"""Command-line interface.

Examples
--------

Generate and verify a multiplier::

    repro-verify verify --architecture BP-WT-CL --width 8 --method mt-lr

Verify a gate-level Verilog netlist::

    repro-verify verify-verilog mult.v --spec multiplier

Export a generated multiplier as Verilog::

    repro-verify generate --architecture SP-CT-BK --width 16 --output mult.v

Print one of the paper's tables::

    repro-verify table table1
"""

from __future__ import annotations

import argparse
import sys

from repro.circuit.verilog import load_verilog, save_verilog
from repro.errors import BlowUpError, ReproError
from repro.experiments.tables import main as tables_main
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify, verify_adder, verify_multiplier


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", default="mt-lr",
                        choices=["mt-lr", "mt-fo", "mt-naive", "mt-xor"],
                        help="verification method (default: mt-lr)")
    parser.add_argument("--monomial-budget", type=int, default=2_000_000,
                        help="abort when the remainder exceeds this many monomials")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="abort after this many seconds")


def _report(result) -> int:
    print(result.summary())
    if not result.verified:
        print("remainder:", result.remainder_text or "(non-zero)")
        if result.counterexample:
            assignment = ", ".join(f"{k}={v}" for k, v in
                                   sorted(result.counterexample.items()))
            print("counterexample:", assignment)
        return 2
    stats = result.model_statistics
    print(f"model: #P={stats.num_polynomials} #M={stats.num_monomials} "
          f"#MP={stats.max_polynomial_terms} #VM={stats.max_monomial_variables}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.adder:
        netlist = generate_adder(args.architecture, args.width)
        result = verify_adder(netlist, method=args.method,
                              monomial_budget=args.monomial_budget,
                              time_budget_s=args.time_budget)
    else:
        netlist = generate_multiplier(args.architecture, args.width)
        result = verify_multiplier(netlist, method=args.method,
                                   monomial_budget=args.monomial_budget,
                                   time_budget_s=args.time_budget)
    return _report(result)


def _cmd_verify_verilog(args: argparse.Namespace) -> int:
    netlist = load_verilog(args.netlist)
    result = verify(netlist, specification=args.spec, method=args.method,
                    monomial_budget=args.monomial_budget,
                    time_budget_s=args.time_budget)
    return _report(result)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.adder:
        netlist = generate_adder(args.architecture, args.width)
    else:
        netlist = generate_multiplier(args.architecture, args.width)
    if args.output:
        save_verilog(netlist, args.output)
        print(f"wrote {netlist.num_gates} gates to {args.output}")
    else:
        from repro.circuit.verilog import write_verilog
        sys.stdout.write(write_verilog(netlist))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    return tables_main([args.name])


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Formal verification of integer multipliers by combining "
                    "Gröbner basis with logic reduction (DATE 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="generate and verify an architecture")
    p_verify.add_argument("--architecture", "-a", default="SP-AR-RC",
                          help="architecture name, e.g. BP-WT-CL, or adder kind with --adder")
    p_verify.add_argument("--width", "-w", type=int, default=8,
                          help="operand width in bits")
    p_verify.add_argument("--adder", action="store_true",
                          help="verify a standalone adder instead of a multiplier")
    _add_budget_arguments(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_vv = sub.add_parser("verify-verilog",
                          help="verify a gate-level Verilog netlist")
    p_vv.add_argument("netlist", help="path to the Verilog file")
    p_vv.add_argument("--spec", default="multiplier",
                      choices=["multiplier", "adder"])
    _add_budget_arguments(p_vv)
    p_vv.set_defaults(func=_cmd_verify_verilog)

    p_gen = sub.add_parser("generate", help="generate a circuit and export Verilog")
    p_gen.add_argument("--architecture", "-a", default="SP-AR-RC")
    p_gen.add_argument("--width", "-w", type=int, default=8)
    p_gen.add_argument("--adder", action="store_true")
    p_gen.add_argument("--output", "-o", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    p_table = sub.add_parser("table", help="print one of the paper's tables")
    p_table.add_argument("name", choices=["table1", "table2", "table3",
                                          "adders", "ablation"])
    p_table.set_defaults(func=_cmd_table)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BlowUpError as error:
        print(f"TIMEOUT/BLOW-UP: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
